"""Durable materialized views: write-ahead log + crash recovery.

The durability acceptance set:

* the WAL round-trips batches byte-exactly and assigns monotonic
  seqnos; a torn tail — at *any* byte offset — truncates back to the
  last whole record on open, never reads past it;
* for every crash point (each record boundary, mid-record, a crash
  between compaction's two steps, a crash during recovery itself),
  recovered views are tuple-identical to a from-scratch recompute of
  the acknowledged-prefix EDB — under chaos and without;
* an acknowledged ``batch_id`` is exactly-once: re-submission after
  recovery (or while live) re-acks without re-applying;
* unrecoverable views quarantine with structured errors while healthy
  siblings recover; capacity failures leave the directory for later;
* a WAL append failure fails the *update* with the view untouched —
  write-ahead in the literal sense.
"""

from __future__ import annotations

import shutil
import struct
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.common.errors import FaultRetriesExhausted
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import RetryPolicy
from repro.resilience.wal import (
    WAL_NAME,
    ViewDurability,
    WalError,
    WriteAheadLog,
)
from repro.obs.counters import CounterRegistry
from repro.server import QueryRequest, QueryService, ServerConfig
from repro.server.session import SessionState

RELATIONAL = dict(pbme=PbmeMode.OFF)
CHAOS_SEED = 20260808

TC = get_program("TC")


def path_arcs(n: int) -> np.ndarray:
    return np.array([[i, i + 1] for i in range(n)], dtype=np.int64)


def _service(wal_root, *, chaos: int | None = None, **overrides) -> QueryService:
    config = dict(max_concurrent=2, queue_limit=16, wal_root=str(wal_root))
    config.update(overrides)
    engine = dict(RELATIONAL)
    if chaos is not None:
        engine["fault_seed"] = chaos
    return QueryService(
        ServerConfig(**config), engine_config=RecStepConfig(**engine)
    )


def _materialize(service: QueryService, edb: np.ndarray) -> str:
    response = service.submit(
        QueryRequest(program=TC, edb_data={"arc": edb}, materialize=True)
    )
    assert response["accepted"], response
    service.pump()
    service.flush()
    return response["session_id"]


def _update(service, view_id, inserts=None, deletes=None, batch_id=None):
    ack = service.submit(
        QueryRequest(
            program=TC,
            edb_data={},
            kind="update",
            target_session=view_id,
            inserts=inserts,
            deletes=deletes,
            batch_id=batch_id,
        )
    )
    assert ack["accepted"], ack
    service.pump()
    service.flush()
    return service.sessions.get(ack["session_id"])


def _boundaries(wal_path: Path) -> list[int]:
    """Byte offsets of every whole-record boundary (prologue included)."""
    data = wal_path.read_bytes()
    offset = 8  # 4-byte magic + 4-byte version
    offsets = [offset]
    while offset + 8 <= len(data):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 8 + length
        offsets.append(offset)
    return offsets


def _edb_after(base: np.ndarray, batches, count: int) -> np.ndarray:
    """The EDB after applying the first ``count`` acknowledged batches."""
    rows = {tuple(int(v) for v in row) for row in base}
    for inserts, deletes in batches[:count]:
        for arr in (inserts or {}).values():
            rows |= {tuple(int(v) for v in r) for r in np.asarray(arr)}
        for arr in (deletes or {}).values():
            rows -= {tuple(int(v) for v in r) for r in np.asarray(arr)}
    return np.array(sorted(rows), dtype=np.int64).reshape(-1, 2)


def _reference_fixpoint(edb: np.ndarray) -> dict:
    result = RecStep(RecStepConfig(**RELATIONAL)).evaluate(TC, {"arc": edb})
    assert result.status == "ok"
    return dict(result.tuples)


# ---------------------------------------------------------------------------
# WAL unit behavior
# ---------------------------------------------------------------------------


class TestWriteAheadLog:
    def test_create_append_reopen_roundtrip(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = WriteAheadLog.create(path, program="TC")
        s1 = wal.append({"arc": np.array([[1, 2]])}, None, batch_id="a")
        s2 = wal.append(None, {"arc": np.array([[3, 4]])}, batch_id="b")
        assert (s1, s2) == (1, 2)
        reopened = WriteAheadLog.open(path)
        assert reopened.program == "TC"
        assert reopened.next_seqno == 3
        assert reopened.applied_batch_ids == {"a", "b"}
        assert [r.seqno for r in reopened.records] == [1, 2]
        np.testing.assert_array_equal(
            reopened.records[0].inserts["arc"], [[1, 2]]
        )
        np.testing.assert_array_equal(
            reopened.records[1].deletes["arc"], [[3, 4]]
        )

    def test_torn_tail_truncated_at_every_byte_offset(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = WriteAheadLog.create(path, program="TC")
        for i in range(3):
            wal.append({"arc": np.array([[i, i + 1]])}, None, batch_id=f"b{i}")
        boundaries = _boundaries(path)
        total = path.read_bytes()
        assert boundaries[-1] == len(total)
        for cut in range(boundaries[0], len(total) + 1):
            torn = tmp_path / "torn.log"
            torn.write_bytes(total[:cut])
            counters = CounterRegistry()
            if cut < boundaries[1]:
                # Not even the header survived: beyond repair by design.
                with pytest.raises(WalError):
                    WriteAheadLog.open(torn, counters=counters)
                continue
            reopened = WriteAheadLog.open(torn, counters=counters)
            # The longest whole-record prefix survives, nothing more.
            expect = sum(1 for b in boundaries[2:] if b <= cut)
            assert [r.seqno for r in reopened.records] == list(
                range(1, expect + 1)
            )
            if cut not in boundaries:
                assert counters.get("wal.torn_truncated") == 1
                # The truncation is durable: a second open is clean.
                clean = CounterRegistry()
                WriteAheadLog.open(torn, counters=clean)
                assert clean.get("wal.torn_truncated") == 0

    def test_unreadable_header_raises(self, tmp_path):
        empty = tmp_path / "empty.log"
        empty.write_bytes(b"")
        with pytest.raises(WalError):
            WriteAheadLog.open(empty)
        foreign = tmp_path / "foreign.log"
        foreign.write_bytes(b"NOPE\x01\x00\x00\x00" + b"\x00" * 32)
        with pytest.raises(WalError):
            WriteAheadLog.open(foreign)
        with pytest.raises(WalError):
            WriteAheadLog.open(tmp_path / "missing.log")

    def test_compact_truncates_and_survives_reopen(self, tmp_path):
        path = tmp_path / WAL_NAME
        wal = WriteAheadLog.create(path, program="TC")
        for i in range(4):
            wal.append({"arc": np.array([[i, i + 1]])}, None, batch_id=f"b{i}")
        wal.compact(4, wal.applied_batch_ids)
        assert wal.record_count == 0
        assert wal.base_seqno == 4
        reopened = WriteAheadLog.open(path)
        assert reopened.base_seqno == 4
        assert reopened.next_seqno == 5  # seqnos stay monotonic across compaction
        assert reopened.applied_batch_ids == {"b0", "b1", "b2", "b3"}

    def test_injected_torn_appends_repair_and_retry(self, tmp_path):
        path = tmp_path / WAL_NAME
        counters = CounterRegistry()
        injector = FaultInjector(7, rate=0.45)
        wal = WriteAheadLog.create(
            path,
            program="TC",
            counters=counters,
            injector=injector,
            retry=RetryPolicy(max_attempts=50),
        )
        for i in range(30):
            wal.append({"arc": np.array([[i, i + 1]])}, None)
        assert injector.injected.get("wal_torn", 0) > 0
        assert counters.get("wal.torn_repaired") == injector.injected["wal_torn"]
        # Every repair left the file at a record boundary: reopen is clean.
        clean = CounterRegistry()
        reopened = WriteAheadLog.open(path, counters=clean)
        assert clean.get("wal.torn_truncated") == 0
        assert len(reopened.records) == 30


# ---------------------------------------------------------------------------
# Crash-recovery identity matrix
# ---------------------------------------------------------------------------


BATCHES = [
    ({"arc": np.array([[0, 5], [20, 21]])}, None),
    (None, {"arc": np.array([[2, 3]])}),
    ({"arc": np.array([[21, 22], [22, 0]])}, None),
    ({"arc": np.array([[2, 3]])}, {"arc": np.array([[20, 21]])}),
]


@pytest.mark.parametrize("chaos", [None, CHAOS_SEED], ids=["clean", "chaos"])
def test_crash_recovery_identity_matrix(tmp_path, chaos):
    """Kill-the-writer at every record boundary and mid-record: the
    recovered view must equal a from-scratch recompute of exactly the
    acknowledged-prefix EDB — no acknowledged batch lost, none doubled."""
    root = tmp_path / "wal"
    base_edb = path_arcs(6)
    service = _service(root, chaos=chaos, wal_compact_records=10_000)
    view_id = _materialize(service, base_edb)
    for index, (inserts, deletes) in enumerate(BATCHES):
        session = _update(
            service, view_id, inserts, deletes, batch_id=f"b{index}"
        )
        assert session.result is not None and session.result.status == "ok", (
            session.failure
        )
    service.drain()

    wal_path = root / view_id / WAL_NAME
    boundaries = _boundaries(wal_path)
    assert len(boundaries) == 2 + len(BATCHES)  # header + one per batch
    wal_bytes = wal_path.read_bytes()

    # Crash points: every record boundary, plus a torn write inside
    # every record (header included).
    crash_points = [(cut, True) for cut in boundaries]
    crash_points += [
        ((boundaries[i] + boundaries[i + 1]) // 2, False)
        for i in range(len(boundaries) - 1)
    ]
    for cut, at_boundary in crash_points:
        crash_root = tmp_path / f"crash-{cut}"
        shutil.copytree(root, crash_root)
        crashed_wal = crash_root / view_id / WAL_NAME
        crashed_wal.write_bytes(wal_bytes[:cut])
        # Acknowledged prefix: whole batch records below the cut. (A cut
        # below the header makes the log unrecoverable — covered below.)
        acknowledged = sum(1 for b in boundaries[2:] if b <= cut)

        recovered = _service(crash_root, chaos=chaos)
        report = recovered.recover()
        if cut < boundaries[1]:
            # Not even the header survived: quarantine, not a guess.
            assert report["recovered"] == {}
            assert any(
                doc["kind"] == "view-unrecoverable"
                for doc in report["failed"].values()
            )
            continue
        assert list(report["recovered"]) == [view_id], report
        doc = report["recovered"][view_id]
        assert doc["records_replayed"] == acknowledged
        new_id = doc["session_id"]
        expected = _reference_fixpoint(
            _edb_after(base_edb, BATCHES, acknowledged)
        )
        assert recovered._views[new_id].fixpoint() == expected
        recovered.drain()


@pytest.mark.parametrize("chaos", [None, CHAOS_SEED], ids=["clean", "chaos"])
def test_compaction_crash_window(tmp_path, chaos):
    """A crash between compaction's two steps — new base durably
    replaced, log not yet truncated — must replay-skip the folded
    records by seqno and still land on the identical fixpoint."""
    root = tmp_path / "wal"
    base_edb = path_arcs(6)
    service = _service(root, chaos=chaos, wal_compact_records=10_000)
    view_id = _materialize(service, base_edb)
    for index, (inserts, deletes) in enumerate(BATCHES):
        session = _update(service, view_id, inserts, deletes, batch_id=f"b{index}")
        assert session.result.status == "ok", session.failure
    # First compaction step only: roll the base, leave the log whole.
    durability = service._durability[view_id]
    view = service._views[view_id]
    durability.checkpoints.save(
        view.snapshot_state(wal_seqno=durability.last_applied_seqno)
    )
    live = view.fixpoint()
    service.drain()

    recovered = _service(root, chaos=chaos)
    report = recovered.recover()
    assert list(report["recovered"]) == [view_id]
    doc = report["recovered"][view_id]
    # Every logged record was already folded into the crashed base.
    assert doc["records_skipped"] == len(BATCHES)
    assert doc["records_replayed"] == 0
    assert recovered.counters.get("recovery.batches_skipped") == len(BATCHES)
    assert recovered._views[doc["session_id"]].fixpoint() == live
    assert live == _reference_fixpoint(
        _edb_after(base_edb, BATCHES, len(BATCHES))
    )


def test_crash_during_recovery_is_recoverable(tmp_path):
    """Recovery mutates nothing but torn tails: a process that dies
    mid-recovery leaves state a second recovery rebuilds identically."""
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(6))
    for index, (inserts, deletes) in enumerate(BATCHES):
        _update(service, view_id, inserts, deletes, batch_id=f"b{index}")
    live = service._views[view_id].fixpoint()
    service.drain()

    # First recovery "crashes" after finishing (its process just dies —
    # nothing was drained, nothing persisted back).
    first = _service(root)
    assert list(first.recover()["recovered"]) == [view_id]
    # Second recovery over the same directory: same answer.
    second = _service(root)
    report = second.recover()
    assert list(report["recovered"]) == [view_id]
    assert (
        second._views[report["recovered"][view_id]["session_id"]].fixpoint()
        == live
    )


# ---------------------------------------------------------------------------
# Exactly-once: duplicate batch ids
# ---------------------------------------------------------------------------


def test_duplicate_batch_id_is_noop_live_and_after_recovery(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    first = _update(
        service, view_id, inserts={"arc": np.array([[0, 4]])}, batch_id="dup"
    )
    assert first.result.status == "ok"
    after_first = service._views[view_id].fixpoint()

    # Live re-submission: acked, nothing re-applied, nothing re-logged.
    again = _update(
        service, view_id, inserts={"arc": np.array([[0, 4]])}, batch_id="dup"
    )
    assert again.result.status == "ok"
    assert again.result.delta_rows == 0
    assert service._views[view_id].fixpoint() == after_first
    assert service.counters.get("wal.duplicate_batches") == 1
    assert service._durability[view_id].wal.record_count == 1
    service.drain()

    # Post-recovery re-submission: the applied set survived the crash.
    recovered = _service(root)
    report = recovered.recover()
    new_id = report["recovered"][view_id]["session_id"]
    replayed = _update(
        recovered, new_id, inserts={"arc": np.array([[0, 4]])}, batch_id="dup"
    )
    assert replayed.result.status == "ok"
    assert replayed.result.delta_rows == 0
    assert recovered.counters.get("wal.duplicate_batches") == 1
    assert recovered._views[new_id].fixpoint() == after_first


# ---------------------------------------------------------------------------
# Quarantine and degraded paths
# ---------------------------------------------------------------------------


def test_corrupt_sibling_quarantines_healthy_view_recovers(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    healthy_id = _materialize(service, path_arcs(5))
    broken_id = _materialize(service, path_arcs(7))
    _update(service, healthy_id, inserts={"arc": np.array([[0, 3]])})
    healthy_fixpoint = service._views[healthy_id].fixpoint()
    service.drain()

    for checkpoint in (root / broken_id / "base").glob("*.npz"):
        checkpoint.write_bytes(b"\x00garbage\x00")

    recovered = _service(root)
    report = recovered.recover()
    assert list(report["recovered"]) == [healthy_id]
    failed = report["failed"][broken_id]
    assert failed["error"] == "ViewUnrecoverable"
    assert failed["kind"] == "view-unrecoverable"
    assert failed["reason"] == "base-unreadable"
    assert recovered.counters.get("recovery.views_quarantined") == 1
    # The corrupt directory moved aside; a re-run does not retry it.
    assert not (root / broken_id).exists()
    assert (root / f"{broken_id}.quarantine").exists()
    new_id = report["recovered"][healthy_id]["session_id"]
    assert recovered._views[new_id].fixpoint() == healthy_fixpoint


def test_capacity_failure_leaves_directory_for_later(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    service.drain()
    # A service too small for the view's manifest reservation: the
    # recovery fails softly — no rename, recoverable later.
    tiny = _service(root, memory_budget=1 << 20)
    report = tiny.recover()
    assert report["recovered"] == {}
    assert report["failed"][view_id]["kind"] == "memory-pressure"
    assert (root / view_id).exists()
    assert tiny.counters.get("recovery.views_quarantined") == 0
    # The same directory recovers on a roomier service.
    roomy = _service(root)
    assert list(roomy.recover()["recovered"]) == [view_id]


def test_wal_append_failure_fails_update_view_keeps_serving(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    before = service._views[view_id].fixpoint()

    durability = service._durability[view_id]

    def always_fails(inserts, deletes, batch_id=None):
        raise FaultRetriesExhausted(
            "disk says no", site="wal_append", attempts=4
        )

    original = durability.wal.append
    durability.wal.append = always_fails
    failed = _update(service, view_id, inserts={"arc": np.array([[0, 3]])})
    assert failed.state is SessionState.FAILED
    assert failed.failure["kind"] == "wal-append"
    # Write-ahead literally: nothing was applied, the view still serves.
    assert service._views[view_id].fixpoint() == before
    assert service._views[view_id].status == "ready"
    durability.wal.append = original
    retried = _update(service, view_id, inserts={"arc": np.array([[0, 3]])})
    assert retried.result.status == "ok"


def test_bad_batch_rejected_before_logging(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    bad = _update(service, view_id, inserts={"nope": np.array([[1, 2]])})
    assert bad.failure["kind"] == "bad-batch"
    ragged = _update(service, view_id, inserts={"arc": np.array([1, 2, 3])})
    assert ragged.failure["kind"] == "bad-batch"
    assert service._durability[view_id].wal.record_count == 0
    assert service._views[view_id].status == "ready"


def test_release_view_keeps_durable_state(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    _update(service, view_id, inserts={"arc": np.array([[0, 3]])}, batch_id="x")
    live = service._views[view_id].fixpoint()
    service.release_view(view_id)
    assert view_id not in service._durability
    # Releasing freed memory, not history: the disk state still recovers.
    recovered = _service(root)
    report = recovered.recover()
    new_id = report["recovered"][view_id]["session_id"]
    assert recovered._views[new_id].fixpoint() == live


def test_metrics_snapshot_wal_section(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    _update(service, view_id, inserts={"arc": np.array([[0, 3]])})
    snapshot = service.metrics_snapshot()
    assert snapshot["wal"]["durable_views"] == 1
    assert snapshot["wal"]["records"] == 1
    assert snapshot["wal"]["last_seqno"] == 1
    assert snapshot["wal"]["bytes"] > 0
    session = service.sessions.all()[-1]
    assert session.to_dict()["wal_seqno"] == 1


def test_recovered_session_marked_in_report(tmp_path):
    root = tmp_path / "wal"
    service = _service(root)
    view_id = _materialize(service, path_arcs(5))
    service.drain()
    recovered = _service(root)
    report = recovered.recover()
    new_id = report["recovered"][view_id]["session_id"]
    doc = recovered.sessions.get(new_id).to_dict()
    assert doc["recovered"] is True
    assert doc["state"] == "done"
    # Recovery latency landed in its histogram family.
    histogram = recovered.histograms.snapshot().get("recovery.latency.all")
    assert histogram is not None and histogram["count"] == 1


# ---------------------------------------------------------------------------
# CLI round-trip: --wal-root / --serve-recover
# ---------------------------------------------------------------------------


def test_cli_wal_roundtrip(tmp_path):
    from repro.cli import run_datalog_file
    from repro.datasets.io import save_relation

    save_relation(tmp_path / "arc.tsv", path_arcs(6))
    (tmp_path / "tc.datalog").write_text(
        ".input arc arc.tsv\n"
        ".output tc tc_out.tsv\n"
        "tc(x, y) :- arc(x, y).\n"
        "tc(x, y) :- tc(x, z), arc(z, y).\n"
    )
    (tmp_path / "updates.jsonl").write_text(
        '{"inserts": {"arc": [[0, 5]]}, "batch_id": "u1"}\n'
        '{"deletes": {"arc": [[2, 3]]}, "batch_id": "u2"}\n'
    )
    wal_root = tmp_path / "wal"
    churned = run_datalog_file(
        tmp_path / "tc.datalog",
        serve_updates=str(tmp_path / "updates.jsonl"),
        wal_root=str(wal_root),
    )
    assert churned.status == "ok"
    first_output = (tmp_path / "tc_out.tsv").read_text()

    recovered = run_datalog_file(
        tmp_path / "tc.datalog",
        wal_root=str(wal_root),
        serve_recover=True,
    )
    assert recovered.status == "ok"
    assert recovered.tuples == churned.tuples
    assert (tmp_path / "tc_out.tsv").read_text() == first_output

    # And both equal a plain evaluation of the churned EDB.
    reference = _reference_fixpoint(
        _edb_after(
            path_arcs(6),
            [
                ({"arc": np.array([[0, 5]])}, None),
                (None, {"arc": np.array([[2, 3]])}),
            ],
            2,
        )
    )
    assert recovered.tuples == reference

"""Radix-partitioned join/dedup/set-difference execution.

Acceptance criteria covered here:

* partition on/off × cache on/off reach byte-identical fixpoints on
  TC, SG, and Andersen, including a checkpoint-resume run;
* the kernels are exact: per-bucket dedup/join/semi-join reproduce the
  shared kernels' output bit for bit (ordering included);
* partitioned dedup beats the shared GSCHT at high thread counts on a
  large delta, and is never chosen at one thread or on tiny inputs;
* partition scratch is charged to the transient ledger and released
  (no ``transient_underflows``), and the degradation ladder's
  shed-partitioning rung shunts operators back to the shared path.
"""

import numpy as np
import pytest

from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.engine import kernels
from repro.engine.database import Database
from repro.engine.executor import COST_DEDUP_FAST, ParallelCostModel
from repro.engine.optimizer import (
    partitioned_dedup_decision,
    partitioned_join_decision,
)
from repro.programs import get_program
from repro.resilience import DegradationController, ResilienceContext

RELATIONAL = dict(pbme=PbmeMode.OFF)


def _graph(seed: int, nodes: int, edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, nodes, size=(edges, 2)).astype(np.int64)


@pytest.fixture
def tc_edb():
    return {"arc": _graph(11, 100, 320)}


@pytest.fixture
def sg_edb():
    return {"arc": _graph(5, 40, 90)}


@pytest.fixture
def aa_edb():
    rng = np.random.default_rng(3)

    def rel(count):
        return np.unique(rng.integers(0, 25, size=(count, 2)), axis=0)

    return {
        "addressOf": rel(18),
        "assign": rel(16),
        "load": rel(12),
        "store": rel(12),
    }


# --------------------------------------------------------------------------
# Kernel exactness
# --------------------------------------------------------------------------


class TestRadixKernels:
    def test_partition_count_must_be_power_of_two(self):
        keys = np.arange(10, dtype=np.int64)
        for bad in (0, -4, 3, 24):
            with pytest.raises(ValueError):
                kernels.radix_partition_ids(keys, bad)

    def test_ids_cover_range_and_are_deterministic(self):
        keys = np.random.default_rng(0).integers(-(2**40), 2**40, 5000)
        ids = kernels.radix_partition_ids(keys, 64)
        assert ids.min() >= 0 and ids.max() < 64
        assert np.array_equal(ids, kernels.radix_partition_ids(keys, 64))

    def test_single_partition_is_identity(self):
        keys = np.arange(7, dtype=np.int64)
        order, offsets = kernels.radix_partition(keys, 1)
        assert np.array_equal(order, np.arange(7))
        assert offsets.tolist() == [0, 7]

    def test_partitioned_unique_matches_shared(self):
        rng = np.random.default_rng(1)
        key = rng.integers(0, 500, 20_000).astype(np.int64)
        order, offsets = kernels.radix_partition(key, 64)
        keep = kernels.partitioned_unique_indices(key, order, offsets)
        _, first = np.unique(key, return_index=True)
        assert np.array_equal(keep, np.sort(first))

    def test_partitioned_join_matches_shared(self):
        rng = np.random.default_rng(2)
        left = rng.integers(0, 300, 4000).astype(np.int64)
        right = rng.integers(0, 300, 5000).astype(np.int64)
        shared = kernels.equi_join_indices(left, right)
        layouts = (
            kernels.radix_partition(left, 32),
            kernels.radix_partition(right, 32),
        )
        part = kernels.partitioned_equi_join_indices(left, right, *layouts)
        assert np.array_equal(part[0], shared[0])
        assert np.array_equal(part[1], shared[1])

    def test_partitioned_semi_mask_matches_shared(self):
        rng = np.random.default_rng(4)
        left = rng.integers(0, 400, 6000).astype(np.int64)
        right = rng.integers(0, 400, 2000).astype(np.int64)
        layouts = (
            kernels.radix_partition(left, 16),
            kernels.radix_partition(right, 16),
        )
        part = kernels.partitioned_semi_join_mask(left, right, *layouts)
        assert np.array_equal(part, kernels.semi_join_mask(left, right))

    def test_negative_keys_partition_safely(self):
        keys = np.array([-5, -1, 0, 1, 5, -5], dtype=np.int64)
        ids = kernels.radix_partition_ids(keys, 8)
        assert ids[0] == ids[5]  # equal keys land in the same bucket
        order, offsets = kernels.radix_partition(keys, 8)
        keep = kernels.partitioned_unique_indices(keys, order, offsets)
        assert np.array_equal(np.sort(keys[keep]), np.unique(keys))


# --------------------------------------------------------------------------
# Fixpoint identity
# --------------------------------------------------------------------------


class TestIdenticalFixpoints:
    @pytest.mark.parametrize(
        "program,edb", [("TC", "tc_edb"), ("SG", "sg_edb"), ("AA", "aa_edb")]
    )
    @pytest.mark.parametrize("cache", [True, False])
    def test_partition_on_off_byte_identical(self, program, edb, cache, request):
        edb_data = request.getfixturevalue(edb)
        spec = get_program(program)
        on = RecStep(
            RecStepConfig(**RELATIONAL, join_cache=cache, partitioned_exec=True)
        ).evaluate(spec, edb_data, dataset="px")
        off = RecStep(
            RecStepConfig(**RELATIONAL, join_cache=cache, partitioned_exec=False)
        ).evaluate(spec, edb_data, dataset="px")
        assert on.status == off.status == "ok"
        assert on.tuples == off.tuples
        assert on.iterations == off.iterations

    def test_partitioned_run_uses_partitioned_operators(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, partitioned_exec=True, profile=True)
        ).evaluate(get_program("TC"), tc_edb, dataset="px")
        counters = result.profile.counters
        assert counters.get("partition.dedup_runs", 0) > 0
        assert counters.get("partition.scatter_rows", 0) > 0

    def test_unpartitioned_run_has_no_partition_counters(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, partitioned_exec=False, profile=True)
        ).evaluate(get_program("TC"), tc_edb, dataset="px")
        counters = result.profile.counters
        assert not any(name.startswith("partition.") for name in counters)

    def test_resume_with_partitioning_matches_uninterrupted(self, tmp_path, tc_edb):
        spec = get_program("TC")
        partial = RecStep(
            RecStepConfig(
                **RELATIONAL,
                partitioned_exec=True,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                deadline=0.1,
            )
        ).evaluate(spec, tc_edb, dataset="px-ckpt")
        assert partial.status == "deadline"
        resumed = RecStep(
            RecStepConfig(**RELATIONAL, partitioned_exec=True, resume_from=str(tmp_path))
        ).evaluate(spec, tc_edb, dataset="px-ckpt")
        unpartitioned = RecStep(
            RecStepConfig(**RELATIONAL, partitioned_exec=False)
        ).evaluate(spec, tc_edb, dataset="px-ckpt")
        assert resumed.status == unpartitioned.status == "ok"
        assert resumed.tuples == unpartitioned.tuples


# --------------------------------------------------------------------------
# The decision: when partitioning pays
# --------------------------------------------------------------------------


class TestPartitionDecision:
    def test_never_partitions_at_one_thread(self):
        model = ParallelCostModel(threads=1)
        choice = partitioned_dedup_decision(model, 64, 1_000_000, COST_DEDUP_FAST)
        assert not choice.partitioned

    def test_tiny_deltas_stay_shared(self):
        model = ParallelCostModel(threads=40)
        choice = partitioned_dedup_decision(model, 64, 50, COST_DEDUP_FAST)
        assert not choice.partitioned

    def test_large_dedup_partitions_at_high_threads(self):
        model = ParallelCostModel(threads=40)
        choice = partitioned_dedup_decision(model, 64, 500_000, COST_DEDUP_FAST)
        assert choice.partitioned
        assert choice.partitioned_estimate < choice.shared_estimate

    def test_build_heavy_join_partitions(self):
        model = ParallelCostModel(threads=40)
        choice = partitioned_join_decision(model, 64, 400_000, 50_000)
        assert choice.partitioned

    def test_probe_dominated_join_stays_shared(self):
        model = ParallelCostModel(threads=40)
        choice = partitioned_join_decision(model, 64, 2_000, 400_000)
        assert not choice.partitioned

    def test_partitions_rounded_to_power_of_two(self):
        db = Database(enforce_budgets=False, partitions=48)
        assert db.partitions == 64
        db = Database(enforce_budgets=False, partitions=1)
        assert db.partitions == 1


# --------------------------------------------------------------------------
# Scaling: the Figure 8 plateau mechanism
# --------------------------------------------------------------------------


def _dedup_sim_seconds(threads: int, partitioned: bool, rows: np.ndarray) -> float:
    db = Database(
        threads=threads, enforce_budgets=False, partitioned_exec=partitioned
    )
    db.load_table("d", ["a", "b"], rows)
    before = db.sim_seconds
    outcome = db.dedup_table("d")
    assert outcome.partitioned == (partitioned and threads > 1)
    return db.sim_seconds - before


class TestScaling:
    @pytest.fixture(scope="class")
    def big_delta(self):
        rng = np.random.default_rng(9)
        return rng.integers(0, 4000, size=(200_000, 2)).astype(np.int64)

    @pytest.mark.parametrize("threads", [20, 32, 40])
    def test_partitioned_dedup_beats_shared(self, threads, big_delta):
        shared = _dedup_sim_seconds(threads, False, big_delta)
        partitioned = _dedup_sim_seconds(threads, True, big_delta)
        assert partitioned < shared

    def test_partitioned_advantage_grows_past_twenty_threads(self, big_delta):
        """The shared dedup's contention penalty is what flattens Figure 8;
        partitioning must recover more of it at 40 threads than at 20."""
        saved_20 = _dedup_sim_seconds(20, False, big_delta) - _dedup_sim_seconds(
            20, True, big_delta
        )
        saved_40 = _dedup_sim_seconds(40, False, big_delta) - _dedup_sim_seconds(
            40, True, big_delta
        )
        assert saved_40 > saved_20 > 0

    def test_dedup_output_identical(self, big_delta):
        def run(partitioned):
            db = Database(enforce_budgets=False, partitioned_exec=partitioned)
            db.load_table("d", ["a", "b"], big_delta)
            return db.dedup_table("d").rows

        assert np.array_equal(run(True), run(False))


# --------------------------------------------------------------------------
# Memory: scratch charged, released, and sheddable
# --------------------------------------------------------------------------


class TestPartitionMemory:
    def test_scratch_charged_and_released(self):
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 2000, size=(100_000, 2)).astype(np.int64)
        db = Database(enforce_budgets=False, partitioned_exec=True, profile=True)
        db.load_table("d", ["a", "b"], rows)
        outcome = db.dedup_table("d")
        assert outcome.partitioned
        from repro.engine.operators import PARTITION_SCRATCH_BYTES

        assert db.metrics.peak_transient_bytes >= rows.shape[0] * PARTITION_SCRATCH_BYTES
        assert db.metrics.transient_bytes == 0
        assert db.metrics.transient_underflows == 0

    def test_shed_partitioning_under_pressure(self):
        """Pre-flight shed: a budget the *partitioned* dedup plan (hash
        plus scatter scratch, ~4.8 MB with the 1.6 MB table) would push
        past the soft watermark, while the shared plan (~3.2 MB) stays
        under — the operator must fall back instead of partitioning."""
        controller = DegradationController(enabled=True)
        rng = np.random.default_rng(6)
        rows = rng.integers(0, 2000, size=(100_000, 2)).astype(np.int64)
        db = Database(
            memory_budget=5_000_000,
            enforce_budgets=False,
            partitioned_exec=True,
            profile=True,
            resilience=ResilienceContext(degradation=controller),
        )
        db.load_table("d", ["a", "b"], rows)
        outcome = db.dedup_table("d")
        assert not outcome.partitioned  # shed: stayed on the shared path
        assert db.profiler.counters.get("partition.shed") > 0
        assert "shed-partitioning" in controller.taken

    def test_sticky_level_disables_partitioning(self):
        """At sticky level 1 the whole speed-for-memory tier is off:
        dedup goes lean (never partitions) and joins stay shared."""
        controller = DegradationController(enabled=True)
        controller.on_pressure(1, 0.85)
        rng = np.random.default_rng(6)
        rows = rng.integers(0, 2000, size=(100_000, 2)).astype(np.int64)
        db = Database(
            enforce_budgets=False,
            partitioned_exec=True,
            profile=True,
            resilience=ResilienceContext(degradation=controller),
        )
        db.load_table("d", ["a", "b"], rows)
        outcome = db.dedup_table("d")
        assert not outcome.partitioned
        assert db.profiler.counters.get("partition.dedup_runs") == 0

    def test_shed_partitioning_is_on_the_ladder(self):
        from repro.resilience.degradation import LADDER

        assert "shed-partitioning" in LADDER

"""EOST end-to-end: the I/O cost difference the optimization removes."""

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program
from repro.storage.manager import (
    COMMIT_WRITE_BANDWIDTH,
    PER_QUERY_WRITE_BANDWIDTH,
    StorageManager,
)


class TestBandwidthModel:
    def test_commit_bandwidth_exceeds_per_query(self):
        # Sequential flush at commit must beat scattered per-query writes.
        assert COMMIT_WRITE_BANDWIDTH > PER_QUERY_WRITE_BANDWIDTH

    def test_io_seconds_accumulate(self):
        manager = StorageManager(eost=False)
        manager.mark_dirty("t", 10_000_000)
        manager.mark_dirty("t", 10_000_000)
        assert manager.io_seconds > 0
        first = manager.io_seconds
        manager.mark_dirty("t", 10_000_000)
        assert manager.io_seconds > first

    def test_dirty_tables_tracked_and_cleared(self):
        manager = StorageManager(eost=True)
        manager.mark_dirty("a", 10)
        manager.mark_dirty("b", 10)
        assert manager.dirty_tables() == {"a", "b"}
        manager.commit()
        assert manager.dirty_tables() == set()


class TestEostEndToEnd:
    @pytest.fixture
    def edges(self):
        rng = np.random.default_rng(3)
        edges = np.unique(rng.integers(0, 120, size=(900, 2)), axis=0)
        return edges[edges[:, 0] != edges[:, 1]]

    def test_eost_saves_time_on_iterative_workloads(self, edges):
        base = dict(enforce_budgets=False, pbme=PbmeMode.OFF)
        with_eost = RecStep(RecStepConfig(**base)).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        without = RecStep(RecStepConfig(**base, eost=False)).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        assert without.sim_seconds > with_eost.sim_seconds
        assert with_eost.tuples == without.tuples

    def test_commit_cost_proportional_to_state(self):
        small = StorageManager(eost=True)
        large = StorageManager(eost=True)
        small.mark_dirty("t", 1_000)
        large.mark_dirty("t", 1_000_000_000)
        assert large.commit() > small.commit()

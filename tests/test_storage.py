"""Unit tests for the storage substrate (tables, catalog, stats, EOST)."""

import numpy as np
import pytest

from repro.common.errors import CatalogError
from repro.storage import (
    BLOCK_ROWS,
    Catalog,
    ColumnSchema,
    ColumnType,
    StatsMode,
    StorageManager,
    Table,
    collect_stats,
)
from repro.storage.block import block_count, iter_blocks
from repro.storage.table import make_table


class TestColumnType:
    def test_parse_known_types(self):
        assert ColumnType.parse("int") is ColumnType.INT
        assert ColumnType.parse(" BIGINT ") is ColumnType.BIGINT

    def test_parse_unknown_type_raises(self):
        with pytest.raises(ValueError):
            ColumnType.parse("VARCHAR")

    def test_logical_widths(self):
        assert ColumnType.INT.logical_bytes == 4
        assert ColumnType.BIGINT.logical_bytes == 8

    def test_invalid_column_name_rejected(self):
        with pytest.raises(ValueError):
            ColumnSchema("bad name")


class TestTable:
    def test_empty_table(self):
        table = make_table("t", ["a", "b"])
        assert len(table) == 0
        assert table.arity == 2
        assert table.data().shape == (0, 2)

    def test_requires_columns(self):
        with pytest.raises(CatalogError):
            Table("t", [])

    def test_rejects_duplicate_columns(self):
        with pytest.raises(CatalogError):
            make_table("t", ["a", "a"])

    def test_append_and_read_back(self):
        table = make_table("t", ["a", "b"])
        table.append_tuples([(1, 2), (3, 4)])
        assert table.to_set() == {(1, 2), (3, 4)}

    def test_append_array_grows_capacity(self):
        table = make_table("t", ["a"])
        rows = np.arange(10_000, dtype=np.int64).reshape(-1, 1)
        table.append_array(rows)
        assert len(table) == 10_000
        assert int(table.data()[-1, 0]) == 9_999

    def test_append_wrong_arity_rejected(self):
        table = make_table("t", ["a", "b"])
        with pytest.raises(CatalogError):
            table.append_array(np.zeros((3, 3), dtype=np.int64))

    def test_bag_semantics_keeps_duplicates(self):
        table = make_table("t", ["a"])
        table.append_tuples([(1,), (1,), (1,)])
        assert len(table) == 3

    def test_data_view_is_readonly(self):
        table = make_table("t", ["a"])
        table.append_tuples([(1,)])
        view = table.data()
        with pytest.raises(ValueError):
            view[0, 0] = 9

    def test_replace_contents(self):
        table = make_table("t", ["a", "b"])
        table.append_tuples([(1, 2)])
        table.replace_contents(np.array([[5, 6], [7, 8]], dtype=np.int64))
        assert table.to_set() == {(5, 6), (7, 8)}

    def test_truncate(self):
        table = make_table("t", ["a"])
        table.append_tuples([(1,), (2,)])
        table.truncate()
        assert len(table) == 0

    def test_column_index_lookup(self):
        table = make_table("t", ["x", "y"])
        assert table.column_index("y") == 1
        with pytest.raises(CatalogError):
            table.column_index("z")

    def test_memory_bytes_uses_logical_width(self):
        table = make_table("t", ["a", "b"])  # INT columns: 4 bytes each
        table.append_tuples([(1, 2)] * 10)
        assert table.memory_bytes() == 10 * 8


class TestBlocks:
    def test_block_count_minimum_one(self):
        assert block_count(0) == 1
        assert block_count(1) == 1

    def test_block_count_rounds_up(self):
        assert block_count(BLOCK_ROWS + 1) == 2

    def test_iter_blocks_covers_all_rows(self):
        rows = np.arange(200, dtype=np.int64).reshape(-1, 2)
        blocks = list(iter_blocks(rows, block_rows=16))
        assert sum(b.shape[0] for b in blocks) == 100
        assert all(b.shape[0] <= 16 for b in blocks)

    def test_iter_blocks_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(iter_blocks(np.zeros((4, 1)), block_rows=0))


class TestCatalog:
    def test_create_and_get(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSchema("a")])
        assert "t" in catalog
        assert catalog.get_table("t").arity == 1

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSchema("a")])
        with pytest.raises(CatalogError):
            catalog.create_table("t", [ColumnSchema("a")])

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table("t", [ColumnSchema("a")])
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_table("t")

    def test_unknown_table_raises(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.get_table("nope")

    def test_stats_stale_until_analyze(self):
        catalog = Catalog()
        table = catalog.create_table("t", [ColumnSchema("a")])
        table.append_tuples([(1,)] * 50)
        assert catalog.get_stats("t").num_rows == 0  # stale
        catalog.analyze("t", StatsMode.SIZE_ONLY)
        assert catalog.get_stats("t").num_rows == 50

    def test_total_memory_counts_all_tables(self):
        catalog = Catalog()
        t1 = catalog.create_table("a", [ColumnSchema("x")])
        t2 = catalog.create_table("b", [ColumnSchema("x")])
        t1.append_tuples([(1,)] * 3)
        t2.append_tuples([(1,)] * 5)
        assert catalog.total_memory_bytes() == (3 + 5) * 4


class TestStats:
    def test_full_stats_collects_column_info(self):
        table = make_table("t", ["a", "b"])
        table.append_tuples([(1, 10), (2, 20), (3, 30)])
        stats, cost = collect_stats(table, StatsMode.FULL)
        assert stats.columns["a"].minimum == 1
        assert stats.columns["b"].maximum == 30
        assert stats.columns["a"].distinct_estimate == 3
        assert cost > 0

    def test_size_only_is_cheaper_than_full(self):
        table = make_table("t", ["a"])
        table.append_array(np.arange(100_000, dtype=np.int64).reshape(-1, 1))
        _, size_cost = collect_stats(table, StatsMode.SIZE_ONLY)
        _, full_cost = collect_stats(table, StatsMode.FULL)
        assert size_cost < full_cost

    def test_none_mode_keeps_previous(self):
        table = make_table("t", ["a"])
        table.append_tuples([(1,)] * 10)
        old, _ = collect_stats(table, StatsMode.SIZE_ONLY)
        table.append_tuples([(1,)] * 10)
        stats, cost = collect_stats(table, StatsMode.NONE, previous=old)
        assert stats.num_rows == 10  # frozen
        assert cost == 0.0

    def test_distinct_estimate_on_large_column(self):
        table = make_table("t", ["a"])
        values = np.arange(50_000, dtype=np.int64) % 100
        table.append_array(values.reshape(-1, 1))
        stats, _ = collect_stats(table, StatsMode.FULL)
        estimate = stats.columns["a"].distinct_estimate
        assert 50 <= estimate <= 3000  # sampled scale-up, order of magnitude

    def test_distinct_sample_capped_near_boundary(self):
        """Regression: a floor stride let n = 8191 "sample" the whole
        array (stride 1); the ceil stride keeps the sample within the
        4096 budget, so the estimate is a GEE scale-up, not an exact
        count."""
        from repro.storage.stats import DISTINCT_SAMPLE_TARGET, _distinct_estimate

        values = np.arange(DISTINCT_SAMPLE_TARGET * 2 - 1, dtype=np.int64)  # 8191
        n = values.shape[0]
        estimate = _distinct_estimate(values)
        assert estimate < n  # pre-fix: exact 8191 (whole-array sample)
        sample = values[:: -(-n // DISTINCT_SAMPLE_TARGET)]
        assert sample.shape[0] <= DISTINCT_SAMPLE_TARGET
        assert estimate == min(n, int(sample.shape[0] * np.sqrt(n / sample.shape[0])))

    def test_size_only_carries_full_column_stats_forward(self):
        """Regression: SIZE_ONLY used to discard an earlier FULL
        collection's column statistics; now they ride along with their
        original staleness stamps."""
        table = make_table("t", ["a"])
        table.append_tuples([(i,) for i in range(10)])
        full, _ = collect_stats(table, StatsMode.FULL)
        assert full.columns["a"].distinct_estimate == 10
        table.append_tuples([(99,)] * 5)
        refreshed, _ = collect_stats(table, StatsMode.SIZE_ONLY, previous=full)
        assert refreshed.num_rows == 15  # the size is current...
        assert refreshed.analyzed_full
        assert refreshed.columns["a"].distinct_estimate == 10  # ...columns carried
        # The row count's stamp tracks this collection; the column stamps
        # keep the FULL collection's, so consumers can see their staleness.
        assert refreshed.table_version == table.version
        assert refreshed.columns_table_version == full.columns_table_version
        assert refreshed.columns_table_version < table.version

    def test_size_only_without_prior_full_has_no_columns(self):
        table = make_table("t", ["a"])
        table.append_tuples([(1,)] * 3)
        stats, _ = collect_stats(table, StatsMode.SIZE_ONLY)
        assert not stats.analyzed_full
        assert stats.columns == {}
        assert stats.columns_table_version == -1


class TestStorageManager:
    def test_eost_defers_io(self):
        manager = StorageManager(eost=True)
        cost = manager.mark_dirty("t", 1_000_000)
        assert cost == 0.0
        assert manager.pending_bytes == 1_000_000
        commit_cost = manager.commit()
        assert commit_cost > 0
        assert manager.pending_bytes == 0

    def test_non_eost_pays_per_query(self):
        manager = StorageManager(eost=False)
        cost = manager.mark_dirty("t", 1_000_000)
        assert cost > 0
        assert manager.pending_bytes == 0

    def test_per_query_io_costs_more_than_deferred(self):
        deferred = StorageManager(eost=True)
        eager = StorageManager(eost=False)
        eager_total = sum(eager.mark_dirty("t", 100_000) for _ in range(100))
        for _ in range(100):
            deferred.mark_dirty("t", 100_000)
        assert deferred.commit() < eager_total

    def test_negative_bytes_rejected(self):
        manager = StorageManager()
        with pytest.raises(ValueError):
            manager.mark_dirty("t", -1)

    def test_commit_empty_is_free(self):
        assert StorageManager().commit() == 0.0

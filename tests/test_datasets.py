"""Tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    andersen_dataset,
    cspa_dataset,
    csda_dataset,
    gnp_graph,
    load_dataset,
    realworld_graph,
    rmat_graph,
)
from repro.datasets.gnp import gnp_name
from repro.datasets.graphs import clean_edges, degree_histogram, with_weights
from repro.datasets.io import load_relation, save_relation
from repro.datasets.rmat import rmat_name


class TestGraphHelpers:
    def test_clean_edges_dedups_and_drops_loops(self):
        edges = np.array([[1, 2], [1, 2], [3, 3], [2, 1]])
        cleaned = clean_edges(edges)
        assert {tuple(r) for r in cleaned.tolist()} == {(1, 2), (2, 1)}

    def test_clean_edges_keeps_loops_when_asked(self):
        edges = np.array([[3, 3]])
        assert clean_edges(edges, allow_self_loops=True).shape[0] == 1

    def test_with_weights_adds_column(self):
        rng = np.random.default_rng(0)
        weighted = with_weights(np.array([[0, 1], [1, 2]]), rng)
        assert weighted.shape == (2, 3)
        assert (weighted[:, 2] >= 1).all()

    def test_degree_histogram(self):
        edges = np.array([[0, 1], [0, 2], [1, 2]])
        assert degree_histogram(edges).tolist() == [2, 1, 0]


class TestGnp:
    def test_deterministic_in_seed(self):
        a = gnp_graph(200, 0.01, seed=5)
        b = gnp_graph(200, 0.01, seed=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(gnp_graph(200, 0.01, seed=1), gnp_graph(200, 0.01, seed=2))

    def test_edge_count_near_expectation(self):
        n, p = 400, 0.01
        edges = gnp_graph(n, p, seed=3)
        expected = n * (n - 1) * p
        assert 0.8 * expected < edges.shape[0] < 1.2 * expected

    def test_no_self_loops_or_duplicates(self):
        edges = gnp_graph(300, 0.02, seed=1)
        assert (edges[:, 0] != edges[:, 1]).all()
        assert np.unique(edges, axis=0).shape[0] == edges.shape[0]

    def test_vertices_in_range(self):
        edges = gnp_graph(100, 0.05, seed=2)
        assert edges.min() >= 0 and edges.max() < 100

    def test_degenerate_sizes(self):
        assert gnp_graph(0).shape == (0, 2)
        assert gnp_graph(1).shape == (0, 2)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            gnp_graph(10, 1.5)

    def test_names(self):
        assert gnp_name(1000) == "G1K"
        assert gnp_name(1000, 0.1) == "G1K-0.1"
        assert gnp_name(500, 0.01) == "G500-0.01"


class TestRmat:
    def test_deterministic(self):
        assert np.array_equal(rmat_graph(1000, seed=1), rmat_graph(1000, seed=1))

    def test_skewed_degrees(self):
        """R-MAT's defining property: heavy-tailed out-degrees."""
        edges = rmat_graph(2000, seed=4)
        degrees = degree_histogram(edges)
        assert degrees.max() > 8 * max(1, int(np.median(degrees[degrees > 0])))

    def test_edge_factor_scales_edges(self):
        small = rmat_graph(1000, edge_factor=5, seed=1)
        large = rmat_graph(1000, edge_factor=20, seed=1)
        assert large.shape[0] > small.shape[0]

    def test_vertices_in_range(self):
        edges = rmat_graph(3000, seed=2)
        assert edges.max() < 3000

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            rmat_graph(100, probs=(0.5, 0.5, 0.5, 0.5))

    def test_names(self):
        assert rmat_name(1_000_000) == "RMAT-1M"
        assert rmat_name(10_000) == "RMAT-10K"


class TestRealworld:
    def test_proxy_sizes_ordered_like_originals(self):
        livejournal = realworld_graph("livejournal")
        orkut = realworld_graph("orkut")
        twitter = realworld_graph("twitter")
        assert twitter.shape[0] > orkut.shape[0] > livejournal.shape[0]

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            realworld_graph("facebook")


class TestAndersen:
    def test_variable_counts_double(self):
        d1 = andersen_dataset(1)
        d3 = andersen_dataset(3)
        max1 = max(int(rows.max()) for rows in d1.values())
        max3 = max(int(rows.max()) for rows in d3.values())
        assert max3 > 2.5 * max1

    def test_all_relations_present(self):
        data = andersen_dataset(2)
        assert set(data) == {"addressOf", "assign", "load", "store"}

    def test_invalid_number(self):
        with pytest.raises(ValueError):
            andersen_dataset(0)
        with pytest.raises(ValueError):
            andersen_dataset(8)

    def test_deterministic(self):
        a = andersen_dataset(2, seed=1)
        b = andersen_dataset(2, seed=1)
        assert all(np.array_equal(a[k], b[k]) for k in a)


class TestProgramGraphs:
    def test_csda_has_long_chains(self):
        """The load-bearing property: ~chain-length iterations."""
        data = csda_dataset("httpd")
        arc = data["arc"]
        # Follow the pure chain from vertex 0: must be hundreds deep.
        successors = dict(
            (int(a), int(b)) for a, b in arc.tolist() if b == a + 1
        )
        depth, vertex = 0, 0
        while vertex in successors and depth < 10_000:
            vertex = successors[vertex]
            depth += 1
        assert depth >= 400

    def test_csda_sizes_ordered(self):
        assert (
            csda_dataset("linux")["arc"].shape[0]
            > csda_dataset("postgresql")["arc"].shape[0]
            > csda_dataset("httpd")["arc"].shape[0]
        )

    def test_cspa_relations(self):
        data = cspa_dataset("httpd")
        assert set(data) == {"assign", "dereference"}
        assert data["assign"].shape[0] > 500
        assert data["dereference"].shape[0] > 50

    def test_unknown_names(self):
        with pytest.raises(KeyError):
            csda_dataset("windows")
        with pytest.raises(KeyError):
            cspa_dataset("windows")


class TestRegistry:
    def test_contains_paper_suites(self):
        assert "G1K" in DATASETS
        assert "RMAT-10K" in DATASETS
        assert "livejournal" in DATASETS
        assert "andersen-7" in DATASETS
        assert "csda-linux" in DATASETS
        assert "cspa-httpd" in DATASETS

    def test_load_graph_dataset(self):
        data = load_dataset("G500")
        assert set(data) == {"arc"}
        assert data["arc"].shape[1] == 2

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("G9Z")

    def test_seeded_variation(self):
        a = load_dataset("G500", seed=1)["arc"]
        b = load_dataset("G500", seed=2)["arc"]
        assert not np.array_equal(a, b)


class TestIo:
    def test_save_load_roundtrip(self, tmp_path):
        rows = np.array([[1, 2], [3, 4]], dtype=np.int64)
        path = tmp_path / "edges.tsv"
        save_relation(path, rows)
        loaded = load_relation(path, arity=2)
        assert np.array_equal(loaded, rows)

    def test_arity_mismatch(self, tmp_path):
        path = tmp_path / "edges.tsv"
        save_relation(path, np.array([[1, 2]]))
        with pytest.raises(ValueError):
            load_relation(path, arity=3)

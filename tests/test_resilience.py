"""Resilient evaluation: fault injection, checkpoints, degradation, deadlines.

The acceptance triangle of the resilience layer:

* a fixed-seed fault-injected run, after retries, reaches a fixpoint
  byte-identical to the fault-free run (TC, SG, AA);
* a run killed between iterations and resumed from its checkpoint
  matches the uninterrupted run exactly;
* a workload that OOMs under the default configuration completes under
  the degradation ladder, with the degradations visible in counters.
"""

import numpy as np
import pytest

from repro.common.errors import (
    EvaluationCancelled,
    FaultRetriesExhausted,
    OutOfMemoryError,
    RecStepError,
    TransientStorageError,
)
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.engine.metrics import MetricsRecorder
from repro.programs import get_program
from repro.resilience import (
    CheckpointError,
    CheckpointManager,
    CheckpointState,
    CancellationToken,
    DeadlineToken,
    DegradationController,
    FaultInjector,
    ResilienceContext,
    RetryPolicy,
)

RELATIONAL = dict(pbme=PbmeMode.OFF)


def _graph(seed: int, nodes: int, edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, nodes, size=(edges, 2)).astype(np.int64)


@pytest.fixture
def tc_edb():
    return {"arc": _graph(42, 120, 400)}


@pytest.fixture
def aa_edb():
    rng = np.random.default_rng(2)

    def rel(count):
        return np.unique(rng.integers(0, 30, size=(count, 2)), axis=0)

    return {
        "addressOf": rel(20),
        "assign": rel(18),
        "load": rel(8),
        "store": rel(8),
    }


# ---------------------------------------------------------------------------
# Fault injector / retry units
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_same_seed_same_draws(self):
        a = FaultInjector(11, rate=0.3)
        b = FaultInjector(11, rate=0.3)
        draws_a = [self._fires(a, "dedup") for _ in range(50)]
        draws_b = [self._fires(b, "dedup") for _ in range(50)]
        assert draws_a == draws_b
        assert any(draws_a)  # rate 0.3 over 50 visits fires sometimes

    @staticmethod
    def _fires(injector: FaultInjector, site: str) -> bool:
        try:
            injector.check(site)
            return False
        except TransientStorageError:
            return True

    def test_sites_draw_independent_streams(self):
        injector = FaultInjector(11, rate=0.5)
        a = [self._fires(injector, "dedup") for _ in range(30)]
        b = [self._fires(injector, "append") for _ in range(30)]
        assert a != b

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(11, rate=0.0)
        for _ in range(100):
            injector.check("dedup")
        assert injector.total_injected() == 0

    def test_ledger_counts_by_site(self):
        injector = FaultInjector(3, rate=0.5)
        for _ in range(40):
            self._fires(injector, "commit")
        assert injector.injected.get("commit") == injector.total_injected() > 0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(1, rate=1.5)


class TestRetry:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.1, backoff_multiplier=2.0)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)

    def test_jitter_desynchronizes_colliding_retriers(self):
        # Pure exponential backoff keeps a thundering herd in lockstep:
        # everyone who faulted together retries together, forever. Seeded
        # jitter breaks the collision while staying bounded below the
        # undithered schedule.
        policy = RetryPolicy(jitter_seed=77)
        a = [policy.backoff_seconds(i, salt="dedup") for i in (1, 2, 3)]
        b = [policy.backoff_seconds(i, salt="spill_write") for i in (1, 2, 3)]
        assert a != b
        for index, (x, y) in enumerate(zip(a, b), start=1):
            base = policy.backoff_base * policy.backoff_multiplier ** (index - 1)
            for value in (x, y):
                assert base * (1.0 - policy.jitter) <= value <= base

    def test_jitter_is_deterministic_per_seed(self):
        schedule = [
            RetryPolicy(jitter_seed=5).backoff_seconds(i, salt="s")
            for i in range(1, 5)
        ]
        replay = [
            RetryPolicy(jitter_seed=5).backoff_seconds(i, salt="s")
            for i in range(1, 5)
        ]
        reseeded = [
            RetryPolicy(jitter_seed=6).backoff_seconds(i, salt="s")
            for i in range(1, 5)
        ]
        assert schedule == replay
        assert schedule != reseeded
        total = RetryPolicy(jitter_seed=5).total_backoff(4, salt="s")
        assert total == pytest.approx(sum(schedule))

    def test_no_jitter_seed_keeps_legacy_schedule(self):
        # jitter_seed defaults to None: existing chaos pins (and every
        # config that never arms a fault seed) see the exact old numbers.
        policy = RetryPolicy(backoff_base=0.1, backoff_multiplier=2.0)
        assert policy.backoff_seconds(3, salt="anything") == pytest.approx(0.4)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)

    def test_context_retries_then_succeeds(self):
        context = ResilienceContext(injector=FaultInjector(5, rate=0.9))
        metrics = MetricsRecorder(enforce_budgets=False)
        context.bind(metrics, metrics.counters)
        # With rate 0.9 and 4 attempts, most calls retry but eventually
        # either succeed or exhaust; run many and observe both behaviours.
        succeeded = failed = 0
        for _ in range(30):
            try:
                assert context.run("dedup", lambda: "ok") == "ok"
                succeeded += 1
            except FaultRetriesExhausted as error:
                assert error.context["site"] == "dedup"
                failed += 1
        assert succeeded and failed
        assert metrics.now() > 0  # backoff charged to the simulated clock

    def test_inert_context_is_passthrough(self):
        context = ResilienceContext()
        assert context.run("dedup", lambda: 7) == 7
        assert not context.active
        assert context.summary() == {}


# ---------------------------------------------------------------------------
# Determinism under chaos (acceptance 1)
# ---------------------------------------------------------------------------


class TestDeterminismUnderChaos:
    @pytest.mark.parametrize(
        "program,edb_seed",
        [("TC", None), ("SG", None), ("AA", None)],
    )
    def test_chaos_run_matches_fault_free(self, program, edb_seed, tc_edb, aa_edb):
        if program == "AA":
            edb = aa_edb
        elif program == "SG":
            edb = {"arc": _graph(7, 60, 150)}
        else:
            edb = tc_edb
        spec = get_program(program)
        clean = RecStep(RecStepConfig(**RELATIONAL, fault_seed=None)).evaluate(
            spec, edb, dataset="chaos"
        )
        chaos = RecStep(
            RecStepConfig(**RELATIONAL, fault_seed=1234, fault_rate=0.15)
        ).evaluate(spec, edb, dataset="chaos")
        assert clean.status == chaos.status == "ok"
        assert chaos.tuples == clean.tuples
        assert chaos.iterations == clean.iterations

    def test_chaos_is_reproducible(self, tc_edb):
        spec = get_program("TC")
        cfg = RecStepConfig(**RELATIONAL, fault_seed=99, fault_rate=0.2)
        a = RecStep(cfg).evaluate(spec, tc_edb, dataset="chaos")
        b = RecStep(cfg).evaluate(spec, tc_edb, dataset="chaos")
        assert a.tuples == b.tuples
        assert a.sim_seconds == b.sim_seconds
        assert a.resilience["fault_sites"] == b.resilience["fault_sites"]

    def test_faults_actually_injected_and_slower(self, tc_edb):
        spec = get_program("TC")
        clean = RecStep(RecStepConfig(**RELATIONAL, fault_seed=None)).evaluate(
            spec, tc_edb, dataset="chaos"
        )
        chaos = RecStep(
            RecStepConfig(**RELATIONAL, fault_seed=1234, fault_rate=0.15)
        ).evaluate(spec, tc_edb, dataset="chaos")
        assert chaos.resilience["faults_injected"] > 0
        assert chaos.sim_seconds > clean.sim_seconds

    def test_exhausted_retries_reported_not_raised(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, fault_seed=8, fault_rate=0.97, retries=2)
        ).evaluate(get_program("TC"), tc_edb, dataset="chaos")
        assert result.status == "fault"
        assert result.failure["error"] == "FaultRetriesExhausted"
        assert result.failure["attempts"] == 2
        assert "site" in result.failure


# ---------------------------------------------------------------------------
# Checkpoint / resume (acceptance 2)
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    def test_state_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1)
        state = CheckpointState(
            program="TC",
            stratum=0,
            iteration=3,
            tables={"full:tc": np.array([[1, 2], [3, 4]], dtype=np.int64)},
            dsd_mu={"tc": 2.5},
            iterations_total=4,
            sim_seconds=1.25,
        )
        path = manager.save(state)
        loaded = CheckpointManager.load(path)
        assert loaded.program == "TC"
        assert loaded.iteration == 3
        assert loaded.dsd_mu == {"tc": 2.5}
        np.testing.assert_array_equal(loaded.tables["full:tc"], state.tables["full:tc"])

    def test_prune_keeps_latest(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=2)
        for iteration in range(5):
            manager.save(
                CheckpointState(program="TC", stratum=0, iteration=iteration)
            )
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        assert names == ["ckpt-s000-i00003.npz", "ckpt-s000-i00004.npz"]

    def test_latest_prefers_stratum_boundary(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=10)
        manager.save(CheckpointState(program="TC", stratum=0, iteration=7))
        manager.save(CheckpointState(program="TC", stratum=0, iteration=-1))
        latest = CheckpointManager.latest(tmp_path)
        assert latest.name == "ckpt-s000-final.npz"

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "ckpt-s000-i00001.npz"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError):
            CheckpointManager.load(path)

    def test_load_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager.load(tmp_path)

    def test_resume_matches_uninterrupted(self, tmp_path, tc_edb):
        spec = get_program("TC")
        # Kill the run mid-stratum with a deadline, checkpointing each
        # iteration.
        partial = RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                deadline=0.15,
            )
        ).evaluate(spec, tc_edb, dataset="ckpt")
        assert partial.status == "deadline"
        assert partial.resilience["checkpoints_written"] > 0
        assert list(tmp_path.glob("ckpt-*.npz"))

        resumed = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
        ).evaluate(spec, tc_edb, dataset="ckpt")
        full = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            spec, tc_edb, dataset="ckpt"
        )
        assert resumed.status == full.status == "ok"
        assert resumed.tuples == full.tuples
        assert resumed.iterations == full.iterations
        assert resumed.resilience["resumed_from"]["stratum"] == 0

    def test_resume_multi_stratum_program(self, tmp_path, aa_edb):
        spec = get_program("AA")
        partial = RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                deadline=0.05,
            )
        ).evaluate(spec, aa_edb, dataset="ckpt")
        assert partial.status == "deadline"
        resumed = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
        ).evaluate(spec, aa_edb, dataset="ckpt")
        full = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            spec, aa_edb, dataset="ckpt"
        )
        assert resumed.tuples == full.tuples
        assert resumed.iterations == full.iterations

    def test_resume_rejects_wrong_program(self, tmp_path, tc_edb, aa_edb):
        RecStep(
            RecStepConfig(**RELATIONAL, checkpoint_dir=str(tmp_path))
        ).evaluate(get_program("TC"), tc_edb, dataset="ckpt")
        with pytest.raises(CheckpointError):
            RecStep(
                RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
            ).evaluate(get_program("AA"), aa_edb, dataset="ckpt")

    def test_checkpoints_charge_simulated_time(self, tmp_path, tc_edb):
        spec = get_program("TC")
        plain = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            spec, tc_edb, dataset="ckpt"
        )
        ckpt = RecStep(
            RecStepConfig(**RELATIONAL, checkpoint_dir=str(tmp_path))
        ).evaluate(spec, tc_edb, dataset="ckpt")
        assert ckpt.sim_seconds > plain.sim_seconds
        assert ckpt.tuples == plain.tuples


# ---------------------------------------------------------------------------
# Crash-safe checkpoints (atomic save, checksum, torn-file fallback)
# ---------------------------------------------------------------------------


class TestCrashSafeCheckpoints:
    @staticmethod
    def _state(iteration: int) -> CheckpointState:
        return CheckpointState(
            program="TC",
            stratum=0,
            iteration=iteration,
            tables={"full:tc": np.arange(iteration * 4, dtype=np.int64).reshape(-1, 2)},
            iterations_total=iteration + 1,
        )

    def test_save_leaves_no_temp_files(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1)
        manager.save(self._state(1))
        assert not list(tmp_path.glob("*.tmp"))
        assert list(tmp_path.glob("ckpt-*.npz"))

    def test_meta_carries_payload_checksum(self, tmp_path):
        import json
        import zipfile

        path = CheckpointManager(tmp_path, every=1).save(self._state(2))
        with zipfile.ZipFile(path) as archive:
            names = archive.namelist()
        assert any("__meta__" in name for name in names)
        # Round-trips through load, which verifies the checksum.
        loaded = CheckpointManager.load(path)
        np.testing.assert_array_equal(loaded.tables["full:tc"], self._state(2).tables["full:tc"])

    def test_truncated_file_fails_direct_load(self, tmp_path):
        path = CheckpointManager(tmp_path, every=1).save(self._state(3))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            CheckpointManager.load(path)

    def test_checksum_detects_payload_corruption(self, tmp_path):
        # Rewrite the archive with one payload array bit-flipped but the
        # original (now stale) checksum: only the checksum can catch it.
        import zipfile

        path = CheckpointManager(tmp_path, every=1).save(self._state(3))
        with zipfile.ZipFile(path) as archive:
            entries = {name: archive.read(name) for name in archive.namelist()}
        victim = next(n for n in entries if n.startswith("table:"))
        blob = bytearray(entries[victim])
        blob[-1] ^= 0xFF  # flip bits in the row payload at the tail
        entries[victim] = bytes(blob)
        with zipfile.ZipFile(path, "w") as archive:
            for name, payload in entries.items():
                archive.writestr(name, payload)
        with pytest.raises(CheckpointError, match="checksum"):
            CheckpointManager.load(path)

    def test_directory_load_skips_torn_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=5)
        manager.save(self._state(1))
        newest = manager.save(self._state(2))
        newest.write_bytes(newest.read_bytes()[:64])
        loaded = CheckpointManager.load(tmp_path)
        assert loaded.iteration == 1  # fell back to the predecessor

    def test_latest_skips_torn_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=5)
        older = manager.save(self._state(1))
        newest = manager.save(self._state(2))
        newest.write_bytes(b"")
        assert CheckpointManager.latest(tmp_path) == older

    def test_all_torn_raises(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=5)
        for iteration in (1, 2):
            path = manager.save(self._state(iteration))
            path.write_bytes(b"torn")
        with pytest.raises(CheckpointError):
            CheckpointManager.load(tmp_path)

    def test_prune_deletes_corrupt_instead_of_counting_toward_keep(self, tmp_path):
        """Regression: a torn file must not occupy a retention slot.

        Before the fix, ``_prune`` counted checksum-failing files toward
        ``keep``, so repeated crashes could evict every good snapshot.
        """
        from repro.obs.profiler import Profiler

        profiler = Profiler()
        manager = CheckpointManager(tmp_path, every=1, keep=2, profiler=profiler)
        manager.save(self._state(1))
        torn = manager.save(self._state(2))
        torn.write_bytes(torn.read_bytes()[:64])  # crashed writer
        manager.save(self._state(3))

        survivors = sorted(p.name for p in tmp_path.glob("ckpt-*.npz"))
        # The torn i2 was deleted; the *valid* predecessor i1 kept its slot.
        assert survivors == ["ckpt-s000-i00001.npz", "ckpt-s000-i00003.npz"]
        assert profiler.counters.get("checkpoint_corrupt_pruned") == 1
        # And the retained window resumes cleanly.
        assert CheckpointManager.load(tmp_path).iteration == 3

    def test_crashed_writer_resume_matches_uninterrupted(self, tmp_path, tc_edb):
        """The satellite acceptance: truncate the newest checkpoint as a
        crashed writer would leave it; resume must fall back to the
        previous one and still reach the identical fixpoint."""
        spec = get_program("TC")
        partial = RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                deadline=0.15,
            )
        ).evaluate(spec, tc_edb, dataset="ckpt")
        assert partial.status == "deadline"
        checkpoints = sorted(tmp_path.glob("ckpt-*.npz"))
        assert len(checkpoints) >= 2  # keep=2 default: newest two survive

        newest = CheckpointManager.latest(tmp_path)
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])  # torn mid-write

        resumed = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
        ).evaluate(spec, tc_edb, dataset="ckpt")
        full = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            spec, tc_edb, dataset="ckpt"
        )
        assert resumed.status == full.status == "ok"
        assert resumed.tuples == full.tuples
        assert resumed.iterations == full.iterations
        assert resumed.resilience["checkpoint_corrupt_skipped"] >= 1


# ---------------------------------------------------------------------------
# Runtime divergence guards (max_iterations / max_total_rows)
# ---------------------------------------------------------------------------


class TestDivergenceGuard:
    def test_max_iterations_trips_structurally(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, max_iterations=3)
        ).evaluate(get_program("TC"), tc_edb, dataset="guard")
        assert result.status == "guard"
        assert result.failure["error"] == "DivergenceGuardTripped"
        assert result.failure["kind"] == "max_iterations"
        assert result.failure["observed"] > result.failure["budget"] == 3
        assert result.resilience["guard"]["iterations"] == result.failure["observed"]

    def test_max_total_rows_trips_structurally(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, max_total_rows=100)
        ).evaluate(get_program("TC"), tc_edb, dataset="guard")
        assert result.status == "guard"
        assert result.failure["kind"] == "max_total_rows"
        assert result.failure["observed"] > 100

    def test_exact_budget_completes(self, tc_edb):
        free = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            get_program("TC"), tc_edb, dataset="guard"
        )
        exact = RecStep(
            RecStepConfig(**RELATIONAL, max_iterations=free.iterations)
        ).evaluate(get_program("TC"), tc_edb, dataset="guard")
        assert exact.status == "ok"
        assert exact.tuples == free.tuples

    def test_guard_covers_pbme_path(self, tc_edb):
        # The default config routes TC through the bit-matrix evaluator,
        # which accounts its batch of iterations at the stratum boundary.
        result = RecStep(RecStepConfig(max_iterations=2)).evaluate(
            get_program("TC"), tc_edb, dataset="guard"
        )
        assert result.status == "guard"
        assert result.failure["kind"] == "max_iterations"

    def test_generous_budgets_do_not_fire(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, max_iterations=10_000, max_total_rows=10**9)
        ).evaluate(get_program("TC"), tc_edb, dataset="guard")
        assert result.status == "ok"
        recap = result.resilience["guard"]
        # Productive iterations only: TC is one recursive stratum, so
        # exactly the converging (empty-delta) iteration is excluded.
        assert recap["iterations"] == result.iterations - 1
        assert "soft_warnings" not in recap

    def test_soft_warning_escalates_degradation_ladder(self, tc_edb):
        free = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            get_program("TC"), tc_edb, dataset="guard"
        )
        # Budget sized so the run finishes inside it but crosses the 80%
        # soft fraction: the warning fires and escalates the ladder.
        result = RecStep(
            RecStepConfig(
                **RELATIONAL,
                max_iterations=free.iterations,
                degradation=True,
                profile=True,
            )
        ).evaluate(get_program("TC"), tc_edb, dataset="guard")
        assert result.status == "ok"
        assert result.resilience["guard"]["soft_warnings"] == ["max_iterations"]
        assert result.profile.counters.get("guard.soft_warnings", 0) >= 1
        assert result.resilience.get("pressure_level", 0) >= 1

    def test_failure_kind_discriminators(self, tc_edb):
        spec = get_program("TC")
        cases = {
            "deadline": RecStepConfig(**RELATIONAL, deadline=0.1),
            "max_iterations": RecStepConfig(**RELATIONAL, max_iterations=2),
            "oom": RecStepConfig(**RELATIONAL, memory_budget=200_000),
        }
        kinds = {
            name: RecStep(cfg).evaluate(spec, tc_edb, dataset="kinds").failure["kind"]
            for name, cfg in cases.items()
        }
        assert kinds == {
            "deadline": "deadline",
            "max_iterations": "max_iterations",
            "oom": "oom",
        }

    def test_invalid_budgets_rejected(self):
        from repro.resilience import RuntimeGuard

        with pytest.raises(ValueError):
            RuntimeGuard(max_iterations=0)
        with pytest.raises(ValueError):
            RuntimeGuard(max_total_rows=-5)


# ---------------------------------------------------------------------------
# Degradation ladder (acceptance 3)
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    def test_ladder_rescues_oom_workload(self, tc_edb):
        spec = get_program("TC")
        free = RecStep(
            RecStepConfig(**RELATIONAL, enforce_budgets=False)
        ).evaluate(spec, tc_edb, dataset="oom")
        budget = int(free.peak_memory_bytes * 0.9)

        plain = RecStep(
            RecStepConfig(**RELATIONAL, memory_budget=budget)
        ).evaluate(spec, tc_edb, dataset="oom")
        assert plain.status == "oom"
        assert plain.failure["error"] == "OutOfMemoryError"
        assert plain.failure["modeled_bytes"] > budget

        rescued = RecStep(
            RecStepConfig(
                **RELATIONAL, memory_budget=budget, degradation=True, profile=True
            )
        ).evaluate(spec, tc_edb, dataset="oom")
        assert rescued.status == "ok"
        assert rescued.tuples == free.tuples
        assert rescued.resilience["degradations_taken"]
        counters = rescued.profile.counters
        assert counters.get("degradations_taken", 0) > 0
        assert counters.get("dedup_lean_path", 0) > 0
        assert counters.get("memory_pressure_soft", 0) > 0

    def test_degradation_off_by_default(self):
        controller = DegradationController()
        controller.on_pressure(2, 0.99)
        assert not controller.lean_dedup()
        assert not controller.force_tpsd()
        assert not controller.prefer_pbme()

    def test_ladder_escalates_sticky(self):
        controller = DegradationController(enabled=True)
        controller.on_pressure(1, 0.85)
        assert controller.lean_dedup()
        assert not controller.force_tpsd()
        controller.on_pressure(2, 0.96)
        assert controller.force_tpsd()
        assert controller.prefer_pbme()
        controller.on_pressure(1, 0.85)  # never de-escalates
        assert controller.force_tpsd()

    def test_preflight_headroom_check(self):
        metrics = MetricsRecorder(memory_budget=1000, enforce_budgets=False)
        metrics.set_base_bytes(500)
        controller = DegradationController(enabled=True)
        controller.bind(metrics, metrics.counters)
        # 500 + 400 = 90% >= the 80% soft watermark: degrade pre-flight.
        assert controller.lean_dedup(planned_bytes=400)
        # 500 + 100 = 60%: no reason to degrade.
        assert not controller.lean_dedup(planned_bytes=100)

    def test_watermark_events_recorded(self):
        metrics = MetricsRecorder(memory_budget=1000, enforce_budgets=False)
        metrics.set_base_bytes(810)
        assert metrics.pressure_level == 1
        metrics.set_base_bytes(960)
        assert metrics.pressure_level == 2
        assert metrics.pressure_events == 2
        metrics.set_base_bytes(100)  # sticky: level stays
        assert metrics.pressure_level == 2


# ---------------------------------------------------------------------------
# Cancellation / deadline (partial results)
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_deadline_produces_partial_report(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, deadline=0.1)
        ).evaluate(get_program("TC"), tc_edb, dataset="dl")
        assert result.status == "deadline"
        assert result.failure["reason"] == "deadline"
        assert result.failure["stratum"] == 0
        assert result.failure["iteration"] >= 0
        assert result.sim_seconds >= 0.1
        assert result.resilience["cancelled"] is True

    def test_generous_deadline_does_not_fire(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, deadline=1e6)
        ).evaluate(get_program("TC"), tc_edb, dataset="dl")
        assert result.status == "ok"

    def test_manual_token(self):
        token = CancellationToken()
        token.check()  # not cancelled: no raise
        token.cancel("user abort")
        with pytest.raises(EvaluationCancelled) as info:
            token.check(stratum=3)
        assert info.value.context["reason"] == "user abort"
        assert info.value.context["stratum"] == 3

    def test_deadline_token_unit(self):
        from repro.common.timing import SimClock

        clock = SimClock()
        token = DeadlineToken(clock, 1.0)
        token.check()
        clock.advance(2.0)
        with pytest.raises(EvaluationCancelled):
            token.check()
        assert token.cancelled


# ---------------------------------------------------------------------------
# Error hierarchy (satellite: structured context)
# ---------------------------------------------------------------------------


class TestErrorHierarchy:
    def test_oom_and_timeout_are_recstep_errors(self):
        from repro.common.errors import EvaluationTimeout

        assert issubclass(OutOfMemoryError, RecStepError)
        assert issubclass(EvaluationTimeout, RecStepError)

    def test_context_accumulates_outermost_loses(self):
        error = OutOfMemoryError("boom", modeled_bytes=100)
        error.add_context(stratum=2, modeled_bytes=999)
        assert error.context == {"modeled_bytes": 100, "stratum": 2}
        assert error.to_dict()["error"] == "OutOfMemoryError"
        assert "stratum=2" in str(error)

    def test_failure_context_from_oom_run(self, tc_edb):
        result = RecStep(
            RecStepConfig(**RELATIONAL, memory_budget=200_000)
        ).evaluate(get_program("TC"), tc_edb, dataset="oom")
        assert result.status == "oom"
        assert result.failure["memory_budget"] == 200_000
        assert "stratum" in result.failure

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PbmeMode, RecStep, RecStepConfig


@pytest.fixture
def tiny_graph() -> np.ndarray:
    """A 5-vertex DAG whose closure is easy to eyeball."""
    return np.array([[0, 1], [1, 2], [2, 3], [0, 3], [3, 4]], dtype=np.int64)


@pytest.fixture
def random_graph() -> np.ndarray:
    """A small random digraph (fixed seed) for cross-engine equivalence."""
    rng = np.random.default_rng(42)
    edges = np.unique(rng.integers(0, 15, size=(40, 2)), axis=0)
    return edges[edges[:, 0] != edges[:, 1]]


@pytest.fixture
def recstep_unbudgeted() -> RecStep:
    """RecStep with budgets off and PBME off (pure relational path)."""
    return RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF))


def reference_closure(edges) -> set[tuple[int, int]]:
    """Brute-force transitive closure (the oracle used across tests)."""
    facts = {(int(a), int(b)) for a, b in edges}
    while True:
        new = {(a, d) for (a, b) in facts for (c, d) in facts if b == c} - facts
        if not new:
            return facts
        facts |= new

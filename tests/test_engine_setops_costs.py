"""Cost-side behaviour of OPSD vs TPSD (the regimes DSD exploits)."""

import numpy as np
import pytest

from repro.engine.database import Database


def set_diff_cost(r_rows: int, delta_rows: int, overlap: int, strategy: str) -> float:
    """Charged simulated seconds of one set-difference call."""
    db = Database(enforce_budgets=False)
    existing = np.column_stack(
        [np.arange(r_rows, dtype=np.int64), np.arange(r_rows, dtype=np.int64)]
    )
    fresh = delta_rows - overlap
    delta = np.vstack(
        [
            existing[:overlap],
            np.column_stack(
                [
                    np.arange(r_rows, r_rows + fresh, dtype=np.int64),
                    np.arange(r_rows, r_rows + fresh, dtype=np.int64),
                ]
            ),
        ]
    )
    db.load_table("r", ["a", "b"], existing)
    db.load_table("d", ["a", "b"], delta)
    before = db.sim_seconds
    outcome = db.set_difference("d", "r", strategy)
    assert outcome.delta.shape[0] == fresh
    return db.sim_seconds - before


class TestRegimes:
    def test_tpsd_wins_when_r_dominates(self):
        """Late iterations: |R| >> |delta| — OPSD rebuilds the huge hash."""
        opsd = set_diff_cost(200_000, 2_000, 1_000, "OPSD")
        tpsd = set_diff_cost(200_000, 2_000, 1_000, "TPSD")
        assert tpsd < opsd

    def test_opsd_wins_when_delta_dominates(self):
        """Early iterations: |delta| >= |R| — one pass suffices."""
        opsd = set_diff_cost(2_000, 100_000, 1_000, "OPSD")
        tpsd = set_diff_cost(2_000, 100_000, 1_000, "TPSD")
        assert opsd < tpsd

    def test_opsd_cost_grows_with_r(self):
        small = set_diff_cost(10_000, 5_000, 100, "OPSD")
        large = set_diff_cost(200_000, 5_000, 100, "OPSD")
        assert large > small

    def test_tpsd_cost_insensitive_to_r_build(self):
        """TPSD never builds on R; growing R only adds probe cost."""
        small = set_diff_cost(50_000, 2_000, 100, "TPSD")
        large = set_diff_cost(400_000, 2_000, 100, "TPSD")
        # Grows (probe side), but far slower than OPSD's build-side growth.
        opsd_small = set_diff_cost(50_000, 2_000, 100, "OPSD")
        opsd_large = set_diff_cost(400_000, 2_000, 100, "OPSD")
        assert (large - small) < (opsd_large - opsd_small)

    def test_intersection_size_reported_for_tpsd_only(self):
        db = Database(enforce_budgets=False)
        db.load_table("r", ["a"], np.array([[1], [2]]))
        db.load_table("d", ["a"], np.array([[2], [3]]))
        assert db.set_difference("d", "r", "OPSD").intersection_size is None
        assert db.set_difference("d", "r", "TPSD").intersection_size == 1


def dup_diff_cost(n_unique: int, repeat: int, strategy: str) -> float:
    """Charged cost of a set difference whose delta has internal duplicates.

    The raw delta always holds ``n_unique * repeat`` rows; only the
    duplicate ratio varies. R is small and disjoint from the delta.
    """
    db = Database(enforce_budgets=False, join_cache=False)
    base = np.column_stack(
        [
            np.arange(10_000_000, 10_001_000, dtype=np.int64),
            np.arange(10_000_000, 10_001_000, dtype=np.int64),
        ]
    )
    distinct = np.column_stack(
        [np.arange(n_unique, dtype=np.int64), np.arange(n_unique, dtype=np.int64)]
    )
    db.load_table("r", ["a", "b"], base)
    db.load_table("d", ["a", "b"], np.repeat(distinct, repeat, axis=0))
    before = db.sim_seconds
    outcome = db.set_difference("d", "r", strategy)
    assert outcome.delta.shape[0] == n_unique
    return db.sim_seconds - before


class TestHonestAccounting:
    """Regressions: charges must track the rows the strategies touch.

    Before the fix, neither strategy charged the up-front sort-unique of
    ``R_delta``, and the probe phases were charged on the *raw* delta row
    count even though they probe the deduplicated rows — so two deltas
    with the same raw size but wildly different duplicate ratios charged
    identical costs.
    """

    def test_tpsd_probe_charged_on_unique_rows(self):
        heavy_dup = dup_diff_cost(6_000, 10, "TPSD")
        no_dup = dup_diff_cost(60_000, 1, "TPSD")
        assert heavy_dup < no_dup

    def test_opsd_probe_charged_on_unique_rows(self):
        heavy_dup = dup_diff_cost(6_000, 10, "OPSD")
        no_dup = dup_diff_cost(60_000, 1, "OPSD")
        assert heavy_dup < no_dup

    @pytest.mark.parametrize("strategy", ["OPSD", "TPSD"])
    def test_unique_sort_appears_as_dedup_phase(self, strategy):
        db = Database(enforce_budgets=False, join_cache=False)
        rows = np.arange(20_000, dtype=np.int64).reshape(-1, 2)
        db.load_table("r", ["a", "b"], rows)
        db.load_table("d", ["a", "b"], rows + 1_000_000)
        start = len(db.cost_model.history)
        db.set_difference("d", "r", strategy)
        phases = [name for name, _ in db.cost_model.history[start:]]
        assert "dedup" in phases

"""Property-based end-to-end tests over random graphs and programs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PbmeMode, RecStep, RecStepConfig
from repro.analysis.harness import make_engine
from repro.programs import get_program
from tests.conftest import reference_closure

graphs = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12)), min_size=0, max_size=35
).map(
    lambda pairs: np.asarray(
        sorted({p for p in pairs if p[0] != p[1]}), dtype=np.int64
    ).reshape(-1, 2)
)


def recstep(**overrides):
    return RecStep(RecStepConfig(enforce_budgets=False, **overrides))


class TestClosureInvariants:
    @given(graphs)
    @settings(max_examples=25, deadline=None)
    def test_tc_is_transitively_closed(self, edges):
        result = recstep(pbme=PbmeMode.OFF).evaluate(get_program("TC"), {"arc": edges}, "p")
        tc = result.tuples["tc"]
        assert {(int(a), int(b)) for a, b in edges} <= tc
        for a, b in tc:
            for c, d in tc:
                if b == c:
                    assert (a, d) in tc

    @given(graphs)
    @settings(max_examples=20, deadline=None)
    def test_tc_minimality(self, edges):
        result = recstep(pbme=PbmeMode.OFF).evaluate(get_program("TC"), {"arc": edges}, "p")
        assert result.tuples["tc"] == reference_closure(edges)

    @given(graphs)
    @settings(max_examples=15, deadline=None)
    def test_ntc_partitions_node_pairs(self, edges):
        if edges.shape[0] == 0:
            return
        result = recstep(pbme=PbmeMode.OFF).evaluate(get_program("NTC"), {"arc": edges}, "p")
        nodes = {int(v) for edge in edges for v in edge}
        tc = result.tuples["tc"]
        ntc = result.tuples["ntc"]
        assert tc.isdisjoint(ntc)
        restricted_tc = {(a, b) for a, b in tc if a in nodes and b in nodes}
        assert restricted_tc | ntc == {(a, b) for a in nodes for b in nodes}


class TestAggregationInvariants:
    @given(graphs)
    @settings(max_examples=20, deadline=None)
    def test_cc_labels_are_reachable_minima(self, edges):
        if edges.shape[0] == 0:
            return
        result = recstep(pbme=PbmeMode.OFF).evaluate(get_program("CC"), {"arc": edges}, "p")
        cc3 = result.tuples["cc3"]
        vertices = {int(v) for edge in edges for v in edge}
        sources = {int(a) for a, _ in edges}
        for vertex, label in cc3:
            # Labels are vertex ids; a vertex with an outgoing edge
            # self-initializes, so its label can only improve below it.
            assert label in vertices
            if vertex in sources:
                assert label <= vertex

    @given(graphs, st.integers(0, 12))
    @settings(max_examples=20, deadline=None)
    def test_sssp_triangle_inequality(self, edges, source):
        if edges.shape[0] == 0:
            return
        rng = np.random.default_rng(1)
        weights = rng.integers(1, 9, size=(edges.shape[0], 1))
        arc = np.hstack([edges, weights])
        result = recstep(pbme=PbmeMode.OFF).evaluate(
            get_program("SSSP"), {"arc": arc, "id": np.array([[source]])}, "p"
        )
        dist = dict(result.tuples["sssp"])
        assert dist.get(source) == 0
        for a, b, w in arc.tolist():
            if a in dist and b in dist:
                assert dist[b] <= dist[a] + w  # relaxed edges

    @given(graphs)
    @settings(max_examples=15, deadline=None)
    def test_gtc_counts_sum_to_closure_size(self, edges):
        if edges.shape[0] == 0:
            return
        result = recstep(pbme=PbmeMode.OFF).evaluate(get_program("GTC"), {"arc": edges}, "p")
        total = sum(count for _, count in result.tuples["gtc"])
        assert total == len(result.tuples["tc"])


class TestEngineAgreementProperty:
    @given(graphs)
    @settings(max_examples=10, deadline=None)
    def test_five_engines_agree_on_csda(self, edges):
        if edges.shape[0] < 2:
            return
        edb = {"nullEdge": edges[:2], "arc": edges}
        outcomes = set()
        for name in ("RecStep", "Souffle", "BigDatalog", "Graspan", "Naive"):
            engine = make_engine(name, enforce_budgets=False)
            result = engine.evaluate(get_program("CSDA"), edb, "p")
            assert result.status == "ok", name
            outcomes.add(frozenset(result.tuples["null"]))
        assert len(outcomes) == 1

"""Tests for the bddbddb solver beyond the cross-engine equivalence suite."""

import numpy as np
import pytest

from repro.baselines.bdd.solver import BddbddbLike
from repro.programs import get_program
from tests.conftest import reference_closure


class TestSolverPrograms:
    def test_tc_with_constants_in_rules(self):
        source_spec = get_program("TC")
        edges = np.array([[0, 1], [1, 2], [2, 0]], dtype=np.int64)
        result = BddbddbLike(enforce_budgets=False).evaluate(
            source_spec, {"arc": edges}, "t"
        )
        assert result.tuples["tc"] == reference_closure(edges)

    def test_sg_matches_oracle(self, random_graph):
        engine = BddbddbLike(enforce_budgets=False)
        result = engine.evaluate(get_program("SG"), {"arc": random_graph}, "t")
        assert result.status == "ok"
        from repro.baselines import NaiveEngine

        oracle = NaiveEngine(enforce_budgets=False).evaluate(
            get_program("SG"), {"arc": random_graph}, "t"
        )
        assert result.tuples["sg"] == oracle.tuples["sg"]

    def test_ntc_negation(self, tiny_graph):
        result = BddbddbLike(enforce_budgets=False).evaluate(
            get_program("NTC"), {"arc": tiny_graph}, "t"
        )
        closure = reference_closure(tiny_graph)
        nodes = {int(v) for edge in tiny_graph for v in edge}
        expected = {(a, b) for a in nodes for b in nodes if (a, b) not in closure}
        assert result.tuples["ntc"] == expected

    def test_cspa_mutual_recursion(self, random_graph):
        edb = {"assign": random_graph[:8], "dereference": random_graph[:6]}
        bdd = BddbddbLike(enforce_budgets=False).evaluate(get_program("CSPA"), edb, "t")
        from repro.baselines import NaiveEngine

        oracle = NaiveEngine(enforce_budgets=False).evaluate(get_program("CSPA"), edb, "t")
        assert bdd.tuples == oracle.tuples

    def test_timeout_surfaces_as_status(self):
        rng = np.random.default_rng(0)
        edges = np.unique(rng.integers(0, 400, size=(3000, 2)), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        engine = BddbddbLike(time_budget=0.001, enforce_budgets=True)
        result = engine.evaluate(get_program("TC"), {"arc": edges}, "t")
        assert result.status == "timeout"

    def test_single_threaded_utilization(self, tiny_graph):
        result = BddbddbLike(enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": tiny_graph}, "t"
        )
        busy = [s.value for s in result.cpu_trace.samples if s.value > 0]
        assert busy and max(busy) <= 0.1  # one thread of the 20-core box

    def test_memory_tracks_bdd_nodes(self, random_graph):
        result = BddbddbLike(enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": random_graph}, "t"
        )
        assert result.peak_memory_bytes > 0

    def test_ordering_hyperparameter_matters(self, random_graph):
        """Table 1's "complex hyperparameter tuning": a bad variable
        ordering inflates work (the paper lets bddbddb pick its own)."""
        good = BddbddbLike(enforce_budgets=False, ordering="interleaved").evaluate(
            get_program("TC"), {"arc": random_graph}, "t"
        )
        bad = BddbddbLike(enforce_budgets=False, ordering="sequential").evaluate(
            get_program("TC"), {"arc": random_graph}, "t"
        )
        assert good.tuples == bad.tuples
        assert bad.sim_seconds > good.sim_seconds

    def test_negative_domain_unsupported(self):
        edges = np.array([[-1, 2]], dtype=np.int64)
        result = BddbddbLike(enforce_budgets=False).evaluate(
            get_program("TC"), {"arc": edges}, "t"
        )
        assert result.status == "unsupported"

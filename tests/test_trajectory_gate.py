"""The trajectory regression gate: band math, comparisons, provenance.

Unit-level coverage of ``benchmarks.check_trajectory`` against synthetic
payloads (no full sweeps in tier-1), plus one miniature end-to-end pass:
a real two-rep engine rung on the cheapest dataset, gated against
itself, must come out clean — and must fail once the baseline is
perturbed beyond the band.
"""

from __future__ import annotations

import json

from benchmarks.check_trajectory import (
    band_for,
    check_provenance,
    compare_engine,
    compare_rung,
    compare_server,
)
from benchmarks.common import config_fingerprint, provenance
from benchmarks.trajectory import (
    ENGINE_GATED_METRICS,
    run_engine_rung,
    scope_bursts,
    scope_ladders,
    summarize,
)


def _summary(median: float, stddev: float = 0.0) -> dict:
    return {
        "median": median,
        "stddev": stddev,
        "min": median,
        "max": median,
        "values": [median],
    }


# ---------------------------------------------------------------------------
# Band math
# ---------------------------------------------------------------------------


def test_band_takes_the_widest_component():
    # 10% of 100 = 10 beats 3 * 1 = 3 and the 1e-3 floor.
    assert band_for("sim_seconds", _summary(100.0, 1.0), 0.10, 3.0) == 10.0
    # 3 * 10 = 30 beats 10% of 100.
    assert band_for("sim_seconds", _summary(100.0, 10.0), 0.10, 3.0) == 30.0
    # Near-zero baselines fall back to the absolute floor.
    assert band_for("sim_seconds", _summary(0.0), 0.10, 3.0) == 1e-3
    assert band_for("peak_memory_bytes", _summary(0.0), 0.10, 3.0) == 4096.0


def test_compare_rung_flags_only_out_of_band():
    base = {"sim_seconds": _summary(10.0), "throughput": _summary(1000.0)}
    fresh_ok = {"sim_seconds": _summary(10.5), "throughput": _summary(1050.0)}
    violations, checked = compare_rung(
        "engine X/Y", fresh_ok, base, ("sim_seconds", "throughput"), 0.10, 3.0
    )
    assert violations == []
    assert len(checked) == 2
    fresh_bad = {"sim_seconds": _summary(12.0), "throughput": _summary(1050.0)}
    violations, checked = compare_rung(
        "engine X/Y", fresh_bad, base, ("sim_seconds", "throughput"), 0.10, 3.0
    )
    assert len(violations) == 1
    assert "sim_seconds" in violations[0]
    assert len(checked) == 1


def test_compare_rung_missing_fresh_metric_is_a_violation():
    base = {"sim_seconds": _summary(10.0)}
    violations, _ = compare_rung("engine X/Y", {}, base, ("sim_seconds",), 0.10, 3.0)
    assert violations and "missing" in violations[0]


def test_compare_rung_skips_metrics_absent_from_baseline():
    # An OOM rung records no summaries; the gate has nothing to check.
    violations, checked = compare_rung(
        "engine CSPA/cspa-linux", {}, {"statuses": ["oom"]}, ENGINE_GATED_METRICS, 0.10, 3.0
    )
    assert violations == [] and checked == []


# ---------------------------------------------------------------------------
# Payload-level comparison
# ---------------------------------------------------------------------------


def _engine_payload(throughput: float) -> dict:
    return {
        "ladders": {
            "TC": [
                {
                    "dataset": "G500",
                    "sim_seconds": _summary(1.0),
                    "throughput": _summary(throughput, stddev=5.0),
                    "peak_memory_bytes": _summary(1e6),
                }
            ]
        }
    }


def test_compare_engine_matches_rungs_by_program_and_dataset():
    violations, checked = compare_engine(_engine_payload(1000.0), _engine_payload(1001.0))
    assert violations == []
    assert len(checked) == 3
    violations, _ = compare_engine(_engine_payload(500.0), _engine_payload(1000.0))
    assert any("throughput" in v for v in violations)


def test_compare_engine_requires_an_overlap():
    fresh = {"ladders": {"SG": [{"dataset": "G9K", "sim_seconds": _summary(1.0)}]}}
    violations, _ = compare_engine(fresh, _engine_payload(1000.0))
    assert any("no fresh rung" in v for v in violations)


def test_compare_server_matches_by_burst():
    def payload(p99: float) -> dict:
        return {
            "bursts": [
                {
                    "burst": 4,
                    "sim_seconds": _summary(2.0),
                    "throughput": _summary(2.0),
                    "latency_p50": _summary(0.5),
                    "latency_p95": _summary(0.9),
                    "latency_p99": _summary(p99),
                    "max_queue_depth": _summary(4.0),
                }
            ]
        }

    violations, checked = compare_server(payload(1.0), payload(1.0))
    assert violations == []
    assert len(checked) == 6
    violations, _ = compare_server(payload(2.0), payload(1.0))
    assert any("latency_p99" in v for v in violations)


# ---------------------------------------------------------------------------
# Provenance
# ---------------------------------------------------------------------------


def test_provenance_fingerprint_round_trip():
    payload = {"provenance": provenance()}
    assert check_provenance(payload, "engine") == []
    stale = {"provenance": {"config_fingerprint": {"digest": "0" * 16}}}
    problems = check_provenance(stale, "engine")
    assert problems and "fingerprint" in problems[0]
    assert check_provenance({}, "engine")  # no provenance at all


def test_fingerprint_tracks_chaos_seed(monkeypatch):
    clean = config_fingerprint()["digest"]
    monkeypatch.setenv("REPRO_CHAOS_SEED", "77")
    armed = config_fingerprint()["digest"]
    assert clean != armed


# ---------------------------------------------------------------------------
# Scopes and a miniature real gate pass
# ---------------------------------------------------------------------------


def test_scopes():
    full = scope_ladders("full")
    smoke = scope_ladders("smoke")
    assert set(full) == set(smoke)
    for program in smoke:
        assert smoke[program] == full[program][:1]
        assert len(full[program]) >= 3
    assert scope_bursts("smoke") == scope_bursts("full")[:1]


def test_summarize_median_and_stddev():
    s = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert s["median"] == 3.0
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["stddev"] > 0
    assert summarize([5.0])["stddev"] == 0.0


def test_gate_clean_against_itself_and_fails_when_perturbed():
    rung = run_engine_rung("AA", "andersen-2", reps=2)
    payload = {"ladders": {"AA": [rung]}}
    # Determinism: the same seeds must gate cleanly against themselves.
    violations, checked = compare_engine(payload, json.loads(json.dumps(payload)))
    assert violations == []
    assert checked
    perturbed = json.loads(json.dumps(payload))
    base_rung = perturbed["ladders"]["AA"][0]
    base_rung["throughput"]["median"] *= 2.0
    base_rung["throughput"]["stddev"] = 0.0
    violations, _ = compare_engine(payload, perturbed)
    assert any("throughput" in v for v in violations)

"""Tests for the common infrastructure: clocks, traces, records, RNG."""

import pytest

from repro.common.records import EvaluationResult, Trace, TraceSample
from repro.common.rng import derive_seed, make_rng
from repro.common.timing import SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.reset()
        assert clock.now() == 0.0


class TestStopwatch:
    def test_charge_buckets(self):
        watch = Stopwatch()
        watch.charge("join", 1.0)
        watch.charge("join", 0.5)
        watch.charge("dedup", 2.0)
        assert watch.buckets["join"] == pytest.approx(1.5)
        assert watch.total() == pytest.approx(3.5)

    def test_merged_does_not_mutate(self):
        a = Stopwatch({"x": 1.0})
        b = Stopwatch({"x": 2.0, "y": 3.0})
        merged = a.merged(b)
        assert merged.buckets == {"x": 3.0, "y": 3.0}
        assert a.buckets == {"x": 1.0}


class TestTrace:
    def test_statistics(self):
        trace = Trace("t")
        trace.record(0.0, 10.0)
        trace.record(1.0, 30.0)
        trace.record(2.0, 20.0)
        assert trace.peak() == 30.0
        assert trace.mean() == pytest.approx(20.0)
        assert trace.final() == 20.0
        assert trace.as_tuples() == [(0.0, 10.0), (1.0, 30.0), (2.0, 20.0)]

    def test_empty_trace(self):
        trace = Trace("t")
        assert trace.peak() == 0.0
        assert trace.mean() == 0.0
        assert trace.final() == 0.0

    def test_samples_are_frozen(self):
        sample = TraceSample(1.0, 2.0)
        with pytest.raises(Exception):
            sample.value = 3.0


class TestEvaluationResult:
    def test_ok_property(self):
        assert EvaluationResult("E", "P", "D").ok
        assert not EvaluationResult("E", "P", "D", status="oom").ok

    def test_sizes(self):
        result = EvaluationResult("E", "P", "D", tuples={"r": {(1,), (2,)}})
        assert result.sizes() == {"r": 2}


class TestRng:
    def test_default_seed_deterministic(self):
        assert make_rng().integers(0, 1000) == make_rng().integers(0, 1000)

    def test_distinct_seeds_distinct_streams(self):
        a = make_rng(1).integers(0, 1 << 30, size=8)
        b = make_rng(2).integers(0, 1 << 30, size=8)
        assert not (a == b).all()

    def test_derive_seed_deterministic_for_strings(self):
        # Critical: string salts must not depend on PYTHONHASHSEED.
        assert derive_seed(7, "andersen", 3) == derive_seed(7, "andersen", 3)
        assert derive_seed(7, "andersen") != derive_seed(7, "cspa")

    def test_derive_seed_order_sensitive(self):
        assert derive_seed(7, 1, 2) != derive_seed(7, 2, 1)

    def test_derive_seed_nonnegative(self):
        for salt in range(50):
            assert derive_seed(123, salt) >= 0

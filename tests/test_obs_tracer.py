"""Tests for the observability layer: tracer, counters, report, export."""

import json

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.common.timing import SimClock
from repro.engine.database import Database
from repro.obs import (
    CATEGORY_ITERATION,
    CATEGORY_OPERATOR,
    CATEGORY_PROGRAM,
    CATEGORY_STATEMENT,
    CATEGORY_STRATUM,
    NULL_PROFILER,
    Profiler,
    ProfileReport,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.counters import CounterRegistry, NullCounterRegistry
from repro.obs.tracer import CATEGORY_ORDER, NULL_SPAN, NullTracer, SpanTracer
from repro.programs import get_program

TC_EDGES = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)


class TestSpanTracer:
    def test_spans_nest_and_record_sim_time(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        with tracer.span("outer", CATEGORY_STRATUM) as outer:
            clock.advance(1.0)
            with tracer.span("inner", CATEGORY_OPERATOR) as inner:
                clock.advance(2.0)
            clock.advance(0.5)
        assert outer.start == 0.0 and outer.end == 3.5
        assert inner.start == 1.0 and inner.end == 3.0
        assert inner in outer.children
        assert outer.duration == 3.5
        assert inner.duration == 2.0
        assert outer.self_time == pytest.approx(1.5)

    def test_sibling_spans_ordered_on_clock(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        with tracer.span("parent", CATEGORY_ITERATION):
            for name in ("a", "b", "c"):
                with tracer.span(name):
                    clock.advance(1.0)
        (parent,) = tracer.roots
        starts = [child.start for child in parent.children]
        assert [c.name for c in parent.children] == ["a", "b", "c"]
        assert starts == sorted(starts)
        # Siblings tile the parent: each starts where the previous ended.
        for left, right in zip(parent.children, parent.children[1:]):
            assert right.start == left.end

    def test_walk_is_preorder_and_find_filters(self):
        tracer = SpanTracer(SimClock())
        with tracer.span("p", CATEGORY_PROGRAM):
            with tracer.span("s", CATEGORY_STRATUM):
                with tracer.span("op"):
                    pass
            with tracer.span("s2", CATEGORY_STRATUM):
                pass
        (root,) = tracer.roots
        assert [s.name for s in root.walk()] == ["p", "s", "op", "s2"]
        assert [s.name for s in root.find(CATEGORY_STRATUM)] == ["s", "s2"]

    def test_exception_unwinding_closes_dangling_spans(self):
        clock = SimClock()
        tracer = SpanTracer(clock)
        with pytest.raises(RuntimeError):
            with tracer.span("outer", CATEGORY_STATEMENT):
                # Simulate a component that opened a child span and raised
                # before closing it: the inner context never exits.
                inner_ctx = tracer.span("leaked")
                inner_ctx.__enter__()
                clock.advance(1.0)
                raise RuntimeError("boom")
        (outer,) = tracer.roots
        assert outer.end is not None
        assert all(child.end is not None for child in outer.walk())
        assert tracer.current is None

    def test_attrs_via_set_and_annotate(self):
        profiler = Profiler(SimClock())
        with profiler.span("op") as span:
            span.set(rows_out=7)
            profiler.annotate(build_side="left")
        assert span.attrs["rows_out"] == 7
        assert span.attrs["build_side"] == "left"


class TestDisabledMode:
    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("anything", CATEGORY_PROGRAM) as span:
            span.set(rows_out=123)
        assert span is NULL_SPAN
        assert span.attrs == {}
        assert tracer.roots == []
        assert list(tracer.all_spans()) == []
        assert tracer.total_traced() == 0.0
        assert not tracer.enabled

    def test_null_profiler_is_inert(self):
        NULL_PROFILER.annotate(rows_out=1)
        NULL_PROFILER.add_phase_time("probe", 1.0)
        NULL_PROFILER.counters.inc("dedup_calls", 5)
        assert NULL_PROFILER.counters.snapshot() == {}
        assert not NULL_PROFILER.enabled

    def test_database_defaults_to_disabled_profiling(self):
        db = Database(enforce_budgets=False)
        assert not db.profiler.enabled
        db.load_table("e", ["a", "b"], TC_EDGES)
        db.execute("SELECT e.a AS a FROM e")
        assert list(db.profiler.tracer.all_spans()) == []

    def test_unprofiled_run_has_no_report(self):
        program = get_program("TC")
        result = RecStep(RecStepConfig()).evaluate(
            program, {"arc": TC_EDGES}, dataset="tiny"
        )
        assert result.status == "ok"
        assert result.profile is None


class TestCounters:
    def test_inc_get_snapshot_clear(self):
        counters = CounterRegistry()
        counters.inc("dedup_calls")
        counters.inc("dedup_calls", 2)
        assert counters.get("dedup_calls") == 3
        assert counters.snapshot() == {"dedup_calls": 3}
        counters.clear()
        assert counters.snapshot() == {}

    def test_null_registry_discards(self):
        counters = NullCounterRegistry()
        counters.inc("dedup_calls", 10)
        assert counters.get("dedup_calls") == 0
        assert counters.snapshot() == {}


@pytest.fixture(scope="module")
def profiled_result():
    """One profiled TC evaluation shared by the report/export tests.

    PBME is forced off so the run takes the relational path, which
    exercises every span category down to individual operators.
    """
    program = get_program("TC")
    config = RecStepConfig(profile=True, pbme=PbmeMode.OFF)
    return RecStep(config).evaluate(program, {"arc": TC_EDGES}, dataset="tiny")


class TestProfiledRun:
    def test_report_attached_and_attributed(self, profiled_result):
        report = profiled_result.profile
        assert isinstance(report, ProfileReport)
        assert report.total_time == pytest.approx(profiled_result.sim_seconds)
        # The program span wraps the whole evaluation, so attribution is
        # complete (the >=95% acceptance bar, with headroom).
        assert report.attributed_fraction() >= 0.95

    def test_five_level_hierarchy(self, profiled_result):
        (root,) = profiled_result.profile.roots
        assert root.category == CATEGORY_PROGRAM
        present = {span.category for span in root.walk()}
        assert present == {
            CATEGORY_PROGRAM,
            CATEGORY_STRATUM,
            CATEGORY_ITERATION,
            CATEGORY_STATEMENT,
            CATEGORY_OPERATOR,
        }

    def test_children_nest_within_parents(self, profiled_result):
        for span in profiled_result.profile.roots[0].walk():
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end
                # Categories never outrank the parent's nesting level.
                assert CATEGORY_ORDER[child.category] >= CATEGORY_ORDER[span.category]

    def test_counters_track_real_work(self, profiled_result):
        counters = profiled_result.profile.counters
        assert counters["statements_executed"] > 0
        assert counters["dedup_calls"] > 0

    def test_rollups_and_rendering(self, profiled_result):
        report = profiled_result.profile
        hotspots = report.render_hotspots(top_n=5)
        assert "% attributed to spans" in hotspots
        assert "counters:" in hotspots
        rules = report.per_rule()
        assert "tc" in rules  # statement time attributed to the tc predicate
        assert report.rollups()  # non-empty, sorted by self time
        self_times = [r.self_time for r in report.rollups()]
        assert self_times == sorted(self_times, reverse=True)


class TestChromeTraceExport:
    def test_schema_and_nesting(self, profiled_result, tmp_path):
        path = write_chrome_trace(profiled_result.profile, tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = payload["traceEvents"]
        assert events[0]["ph"] == "M"  # process_name metadata record
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "no complete events exported"
        for event in spans:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0 and event["dur"] >= 0
        # Microsecond timestamps reproduce the simulated timeline.
        total = payload["otherData"]["total_sim_seconds"]
        program_events = [e for e in spans if e["cat"] == CATEGORY_PROGRAM]
        assert len(program_events) == 1
        assert program_events[0]["dur"] == pytest.approx(total * 1e6)
        assert payload["otherData"]["counters"] == profiled_result.profile.counters

    def test_round_trips_through_json(self, profiled_result):
        # Every attr the exporter keeps must be JSON-serialisable.
        text = json.dumps(to_chrome_trace(profiled_result.profile))
        assert json.loads(text)["traceEvents"]

"""End-to-end correctness of RecStep on every benchmark program.

Each program runs on small random inputs and is checked against an
independent brute-force Python reference. PBME paths are additionally
checked for equivalence with the relational path.
"""

import heapq
from collections import Counter

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program
from tests.conftest import reference_closure


def run(name, data, **config_overrides):
    config = RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF, **config_overrides)
    return RecStep(config).evaluate(get_program(name), data, dataset="test")


@pytest.fixture
def edges(random_graph):
    return random_graph


class TestTransitiveClosure:
    def test_tc_matches_reference(self, edges):
        result = run("TC", {"arc": edges})
        assert result.tuples["tc"] == reference_closure(edges)

    def test_tc_empty_graph(self):
        result = run("TC", {"arc": np.empty((0, 2), dtype=np.int64)})
        assert result.tuples["tc"] == set()

    def test_tc_single_edge(self):
        result = run("TC", {"arc": np.array([[1, 2]])})
        assert result.tuples["tc"] == {(1, 2)}

    def test_tc_cycle(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        result = run("TC", {"arc": edges})
        assert result.tuples["tc"] == {(a, b) for a in range(3) for b in range(3)}

    def test_tc_pbme_equivalence(self, edges):
        relational = run("TC", {"arc": edges})
        pbme = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            get_program("TC"), {"arc": edges}, dataset="test"
        )
        assert pbme.tuples["tc"] == relational.tuples["tc"]
        assert pbme.detail["pbme_strata"] == 1.0


class TestSameGeneration:
    @staticmethod
    def reference(edge_set):
        siblings = {
            (x, y)
            for (p, x) in edge_set
            for (q, y) in edge_set
            if p == q and x != y
        }
        result = set(siblings)
        while True:
            new = {
                (x, y)
                for (a, b) in result
                for (a2, x) in edge_set
                for (b2, y) in edge_set
                if a2 == a and b2 == b
            } - result
            if not new:
                return result
            result |= new

    def test_sg_matches_reference(self, edges):
        edge_set = {tuple(map(int, e)) for e in edges}
        result = run("SG", {"arc": edges})
        assert result.tuples["sg"] == self.reference(edge_set)

    def test_sg_pbme_equivalence(self, edges):
        relational = run("SG", {"arc": edges})
        pbme = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            get_program("SG"), {"arc": edges}, dataset="test"
        )
        assert pbme.tuples["sg"] == relational.tuples["sg"]

    def test_sg_pbme_coordination_same_answer(self, edges):
        plain = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            get_program("SG"), {"arc": edges}, dataset="test"
        )
        coordinated = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON, sg_coordination=True)
        ).evaluate(get_program("SG"), {"arc": edges}, dataset="test")
        assert plain.tuples["sg"] == coordinated.tuples["sg"]


class TestReach:
    def test_reach_matches_bfs(self, edges):
        source = int(edges[0, 0])
        result = run("REACH", {"arc": edges, "id": np.array([[source]])})
        reached = {source}
        changed = True
        while changed:
            changed = False
            for a, b in edges.tolist():
                if a in reached and b not in reached:
                    reached.add(b)
                    changed = True
        assert result.tuples["reach"] == {(v,) for v in reached}

    def test_reach_isolated_source(self, edges):
        lonely = int(edges.max()) + 10
        result = run("REACH", {"arc": edges, "id": np.array([[lonely]])})
        assert result.tuples["reach"] == {(lonely,)}


class TestConnectedComponents:
    def test_cc_matches_label_propagation(self, edges):
        result = run("CC", {"arc": edges})
        labels = {int(x): int(x) for x in edges[:, 0]}
        changed = True
        while changed:
            changed = False
            for x, y in edges.tolist():
                if x in labels:
                    candidate = labels[x]
                    if y not in labels or candidate < labels[y]:
                        labels[y] = candidate
                        changed = True
        assert result.tuples["cc"] == {(v,) for v in set(labels.values())}


class TestSssp:
    def test_sssp_matches_dijkstra(self, edges):
        rng = np.random.default_rng(7)
        weights = rng.integers(1, 10, size=(edges.shape[0], 1))
        arc = np.hstack([edges, weights])
        source = int(edges[0, 0])
        result = run("SSSP", {"arc": arc, "id": np.array([[source]])})

        adjacency: dict[int, list[tuple[int, int]]] = {}
        for a, b, w in arc.tolist():
            adjacency.setdefault(a, []).append((b, w))
        dist = {source: 0}
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, 1 << 62):
                continue
            for v, w in adjacency.get(u, []):
                if d + w < dist.get(v, 1 << 62):
                    dist[v] = d + w
                    heapq.heappush(heap, (d + w, v))
        assert result.tuples["sssp"] == set(dist.items())


class TestProgramAnalyses:
    def test_andersen_matches_reference(self):
        rng = np.random.default_rng(11)
        n = 14
        def rel(count):
            rows = np.unique(rng.integers(0, n, size=(count, 2)), axis=0)
            return rows
        address_of, assign, load, store = rel(10), rel(8), rel(5), rel(5)
        result = run(
            "AA",
            {"addressOf": address_of, "assign": assign, "load": load, "store": store},
        )
        pts = {(y, x) for y, x in address_of.tolist()}
        while True:
            new = set()
            new |= {(y, x) for (y, z) in assign.tolist() for (z2, x) in pts if z2 == z}
            new |= {
                (y, w)
                for (y, x) in load.tolist()
                for (x2, z) in pts
                if x2 == x
                for (z2, w) in pts
                if z2 == z
            }
            new |= {
                (z, w)
                for (y, x) in store.tolist()
                for (y2, z) in pts
                if y2 == y
                for (x2, w) in pts
                if x2 == x
            }
            if new <= pts:
                break
            pts |= new
        assert result.tuples["pointsTo"] == pts

    def test_csda_matches_reference(self, edges):
        null_edges = edges[:3]
        result = run("CSDA", {"nullEdge": null_edges, "arc": edges})
        null = {tuple(map(int, e)) for e in null_edges}
        edge_list = edges.tolist()
        while True:
            new = {
                (x, y) for (x, w) in null for (w2, y) in edge_list if w2 == w
            } - null
            if not new:
                break
            null |= new
        assert result.tuples["null"] == null

    def test_cspa_runs_and_is_mutual(self, edges):
        result = run("CSPA", {"assign": edges[:8], "dereference": edges[:6]})
        assert result.status == "ok"
        assert result.tuples["valueFlow"]


class TestNegationAndAggregation:
    def test_ntc_complement(self, edges):
        result = run("NTC", {"arc": edges})
        closure = reference_closure(edges)
        nodes = {int(v) for edge in edges for v in edge}
        expected = {(a, b) for a in nodes for b in nodes if (a, b) not in closure}
        assert result.tuples["ntc"] == expected

    def test_gtc_counts(self, edges):
        result = run("GTC", {"arc": edges})
        closure = reference_closure(edges)
        counts = Counter(a for a, _ in closure)
        assert result.tuples["gtc"] == set(counts.items())


class TestConfigurationsAgree:
    """Every optimization configuration must compute the same fixpoint."""

    @pytest.mark.parametrize(
        "ablation",
        ["uie", "oof", "oof-fa", "dsd", "eost", "fast_dedup"],
    )
    def test_ablations_preserve_tc(self, edges, ablation):
        base = run("TC", {"arc": edges})
        config = RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF).without(ablation)
        ablated = RecStep(config).evaluate(get_program("TC"), {"arc": edges}, "test")
        assert ablated.tuples["tc"] == base.tuples["tc"]

    def test_no_op_preserves_cspa(self, edges):
        base = run("CSPA", {"assign": edges[:8], "dereference": edges[:6]})
        config = RecStepConfig.no_op(enforce_budgets=False)
        no_op = RecStep(config).evaluate(
            get_program("CSPA"), {"assign": edges[:8], "dereference": edges[:6]}, "test"
        )
        assert no_op.tuples == base.tuples

    def test_thread_count_does_not_change_results(self, edges):
        one = run("TC", {"arc": edges}, threads=1)
        forty = run("TC", {"arc": edges}, threads=40)
        assert one.tuples == forty.tuples

    def test_more_threads_speed_up_large_inputs(self):
        rng = np.random.default_rng(5)
        big = np.unique(rng.integers(0, 300, size=(3000, 2)), axis=0)
        big = big[big[:, 0] != big[:, 1]]
        one = run("TC", {"arc": big}, threads=1)
        twenty = run("TC", {"arc": big}, threads=20)
        assert one.tuples == twenty.tuples
        assert one.sim_seconds > twenty.sim_seconds

"""Behavioural tests of the interpreter: UIE/OOF/EOST/DSD effects.

Correctness of the computed fixpoints is covered in test_core_programs;
here we verify that the optimization switches change what the engine
*does* (queries issued, statistics collected, I/O deferred) in the ways
Algorithm 1 and Section 5 describe.
"""

import numpy as np
import pytest

from repro import OofMode, PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program


@pytest.fixture
def aa_edb():
    rng = np.random.default_rng(2)
    def rel(count):
        return np.unique(rng.integers(0, 30, size=(count, 2)), axis=0)
    return {
        "addressOf": rel(20),
        "assign": rel(18),
        "load": rel(8),
        "store": rel(8),
    }


def run_with(config: RecStepConfig, edb, program="AA"):
    engine = RecStep(config)
    result = engine.evaluate(get_program(program), edb, dataset="test")
    assert result.status == "ok"
    return engine, result


BASE = dict(enforce_budgets=False, pbme=PbmeMode.OFF)


class TestUie:
    def test_uie_issues_fewer_queries(self, aa_edb):
        on_engine, _ = run_with(RecStepConfig(**BASE), aa_edb)
        off_engine, _ = run_with(RecStepConfig(**BASE, uie=False), aa_edb)
        assert off_engine.last_database.queries_executed > on_engine.last_database.queries_executed

    def test_uie_off_is_slower(self, aa_edb):
        _, on = run_with(RecStepConfig(**BASE), aa_edb)
        _, off = run_with(RecStepConfig(**BASE, uie=False), aa_edb)
        assert off.sim_seconds > on.sim_seconds


class TestOof:
    def test_oof_na_freezes_statistics(self, aa_edb):
        engine, _ = run_with(RecStepConfig(**BASE, oof=OofMode.NA), aa_edb)
        # Delta-table stats stay at their init-time values under NA.
        stats = engine.last_database.catalog  # tables dropped post-run;
        assert stats is not None  # the run completed without re-analyzing

    def test_oof_fa_costs_more_than_on(self, aa_edb):
        _, on = run_with(RecStepConfig(**BASE, oof=OofMode.ON), aa_edb)
        _, fa = run_with(RecStepConfig(**BASE, oof=OofMode.FA), aa_edb)
        assert fa.sim_seconds > on.sim_seconds

    def test_all_modes_same_fixpoint(self, aa_edb):
        results = [
            run_with(RecStepConfig(**BASE, oof=mode), aa_edb)[1].tuples["pointsTo"]
            for mode in (OofMode.ON, OofMode.NA, OofMode.FA)
        ]
        assert results[0] == results[1] == results[2]


class TestEost:
    def test_eost_defers_flush(self, aa_edb):
        engine, _ = run_with(RecStepConfig(**BASE), aa_edb)
        storage = engine.last_database.storage
        assert storage.eost
        assert storage.query_commits == 0  # nothing written per query
        assert storage.flushed_bytes > 0   # everything at commit

    def test_no_eost_pays_per_query_io(self, aa_edb):
        engine, _ = run_with(RecStepConfig(**BASE, eost=False), aa_edb)
        assert engine.last_database.storage.query_commits > 0


class TestDsd:
    def test_strategies_recorded_per_iteration(self, aa_edb):
        engine, _ = run_with(RecStepConfig(**BASE), aa_edb)
        strategies = {
            strategy
            for record in engine.last_report.records
            for strategy in record.set_diff_strategies.values()
        }
        assert strategies <= {"OPSD", "TPSD", "AGG-MERGE"}
        assert strategies

    def test_dsd_off_uses_only_opsd(self, aa_edb):
        engine, _ = run_with(RecStepConfig(**BASE, dsd=False), aa_edb)
        strategies = {
            strategy
            for record in engine.last_report.records
            for strategy in record.set_diff_strategies.values()
        }
        assert strategies == {"OPSD"}

    def test_dsd_picks_tpsd_in_long_tail(self):
        """A long chain: R grows while deltas stay at one tuple, putting
        later iterations deep in TPSD territory. The join-state cache is
        disabled: with a persistent whole-row index OPSD's build drops to
        the appended Δ and correctly stays cheaper than TPSD forever."""
        chain = np.array([[i, i + 1] for i in range(60)])
        engine, _ = run_with(
            RecStepConfig(**BASE, join_cache=False), {"arc": chain}, program="TC"
        )
        strategies = [
            strategy
            for record in engine.last_report.records
            for strategy in record.set_diff_strategies.values()
        ]
        assert "TPSD" in strategies


class TestReporting:
    def test_iteration_records_cover_run(self, aa_edb):
        engine, result = run_with(RecStepConfig(**BASE), aa_edb)
        records = engine.last_report.records
        assert len(records) == result.iterations
        assert records[-1].delta_sizes  # final record exists
        assert all(size == 0 for size in records[-1].delta_sizes.values())

    def test_delta_sizes_sum_to_fixpoint(self, aa_edb):
        engine, result = run_with(RecStepConfig(**BASE), aa_edb)
        derived = sum(
            record.delta_sizes.get("pointsTo", 0)
            for record in engine.last_report.records
        )
        assert derived == len(result.tuples["pointsTo"])

    def test_traces_attached(self, aa_edb):
        _, result = run_with(RecStepConfig(**BASE), aa_edb)
        assert result.memory_trace.samples
        assert result.cpu_trace.samples
        assert result.peak_memory_bytes > 0


class TestGroundFacts:
    def test_fact_rules_seed_idb(self):
        """Ground facts in the program (not the EDB) populate relations."""
        source = """
            base(1, 2).
            base(2, 3).
            tc(x, y) :- base(x, y).
            tc(x, y) :- tc(x, z), base(z, y).
        """
        engine = RecStep(RecStepConfig(**BASE))
        result = engine.evaluate(source, {}, dataset="facts")
        assert result.status == "ok"
        assert result.tuples["tc"] == {(1, 2), (2, 3), (1, 3)}

    def test_facts_mix_with_edb(self):
        source = """
            seed(0).
            reach(x) :- seed(x).
            reach(y) :- reach(x), arc(x, y).
        """
        engine = RecStep(RecStepConfig(**BASE))
        result = engine.evaluate(
            source, {"arc": np.array([[0, 1], [1, 2]])}, dataset="facts"
        )
        assert result.tuples["reach"] == {(0,), (1,), (2,)}


class TestEmptyInputs:
    def test_empty_edb_relation(self):
        engine = RecStep(RecStepConfig(**BASE))
        result = engine.evaluate(
            get_program("TC"), {"arc": np.empty((0, 2), dtype=np.int64)}, "empty"
        )
        assert result.status == "ok"
        assert result.tuples["tc"] == set()
        assert result.iterations >= 1

    def test_cspa_with_empty_dereference(self):
        engine = RecStep(RecStepConfig(**BASE))
        result = engine.evaluate(
            get_program("CSPA"),
            {
                "assign": np.array([[1, 2], [2, 3]]),
                "dereference": np.empty((0, 2), dtype=np.int64),
            },
            "empty-deref",
        )
        assert result.status == "ok"
        # valueFlow still contains the assign-derived and reflexive tuples.
        assert (1, 2) in result.tuples["valueFlow"]
        assert result.tuples["memoryAlias"] >= {(1, 1), (2, 2), (3, 3)}

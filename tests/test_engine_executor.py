"""Tests for the simulated multicore cost model and metrics recorder."""

import pytest

from repro.common.errors import EvaluationTimeout, OutOfMemoryError
from repro.engine.executor import (
    BUILD_PHASE,
    DEDUP_PHASE,
    SCAN_PHASE,
    ParallelCostModel,
    split_tasks,
)
from repro.engine.metrics import MetricsRecorder


class TestParallelCostModel:
    def test_single_thread_runs_serially(self):
        model = ParallelCostModel(threads=1)
        outcome = model.run_phase(SCAN_PHASE, [1.0, 1.0, 1.0])
        assert outcome.makespan == pytest.approx(3.0, rel=0.01)

    def test_more_threads_reduce_makespan(self):
        tasks = [0.1] * 64
        t1 = ParallelCostModel(threads=1).run_phase(SCAN_PHASE, tasks).makespan
        t8 = ParallelCostModel(threads=8).run_phase(SCAN_PHASE, tasks).makespan
        t16 = ParallelCostModel(threads=16).run_phase(SCAN_PHASE, tasks).makespan
        assert t1 > t8 > t16

    def test_speedup_plateaus_past_physical_cores(self):
        """Figure 8's shape: near-linear to 16, marginal gains past 20."""
        tasks = [0.01] * 400
        times = {
            k: ParallelCostModel(threads=k).run_phase(DEDUP_PHASE, tasks).makespan
            for k in (1, 16, 20, 40)
        }
        speedup_16 = times[1] / times[16]
        speedup_40 = times[1] / times[40]
        assert speedup_16 > 8  # scales well up to 16
        assert speedup_40 < speedup_16 * 1.4  # small marginal gain after

    def test_contention_penalizes_dedup_more_than_scan(self):
        tasks = [0.01] * 200
        scan = ParallelCostModel(threads=20).run_phase(SCAN_PHASE, tasks).makespan
        dedup = ParallelCostModel(threads=20).run_phase(DEDUP_PHASE, tasks).makespan
        assert dedup > scan

    def test_makespan_bounded_by_largest_task(self):
        model = ParallelCostModel(threads=40)
        outcome = model.run_phase(SCAN_PHASE, [5.0] + [0.001] * 10)
        assert outcome.makespan >= 5.0

    def test_empty_phase_is_free(self):
        outcome = ParallelCostModel(threads=4).run_phase(BUILD_PHASE, [])
        assert outcome.makespan == 0.0

    def test_efficiency_in_unit_interval(self):
        outcome = ParallelCostModel(threads=20).run_phase(SCAN_PHASE, [0.5] * 10)
        assert 0.0 <= outcome.efficiency <= 1.0

    def test_efficiency_counts_occupied_workers_only(self):
        """A 2-task phase on a 20-thread machine occupies 2 workers; its
        scheduling efficiency must be ~1, not ~2/20 (the old bug divided
        busy time by all threads, punishing narrow phases)."""
        outcome = ParallelCostModel(threads=20).run_phase(SCAN_PHASE, [0.5, 0.5])
        assert outcome.workers == 2
        assert outcome.efficiency > 0.9
        # Machine utilization converts back to the whole-machine view.
        assert outcome.machine_utilization(20) == pytest.approx(
            outcome.efficiency * 2 / 20
        )

    def test_injector_reruns_stretch_makespan(self):
        class AlwaysFail:
            def task_reruns(self, phase_name, num_tasks):
                return 1

        clean = ParallelCostModel(threads=4).run_phase(SCAN_PHASE, [0.5] * 8)
        faulty_model = ParallelCostModel(threads=4)
        faulty_model.injector = AlwaysFail()
        faulty = faulty_model.run_phase(SCAN_PHASE, [0.5] * 8)
        assert faulty.task_reruns == 1
        assert faulty.makespan > clean.makespan
        assert faulty.total_work > clean.total_work

    def test_history_recorded(self):
        model = ParallelCostModel(threads=2)
        model.run_phase(SCAN_PHASE, [0.1])
        model.run_phase(BUILD_PHASE, [0.1])
        assert [kind for kind, _ in model.history] == ["scan", "build"]

    def test_split_tasks_even(self):
        tasks = split_tasks(1.0, 4)
        assert len(tasks) == 4
        assert sum(tasks) == pytest.approx(1.0)

    def test_hyperthread_yield_partial(self):
        model = ParallelCostModel(threads=40, physical_cores=20, ht_yield=0.2)
        width = model.effective_width(SCAN_PHASE)
        assert 20 < width < 40


class TestMetricsRecorder:
    def test_clock_advances(self):
        metrics = MetricsRecorder(enforce_budgets=False)
        metrics.advance(1.5)
        assert metrics.now() == pytest.approx(1.5)

    def test_negative_advance_ignored(self):
        metrics = MetricsRecorder(enforce_budgets=False)
        metrics.advance(0.0)
        assert metrics.now() == 0.0

    def test_memory_peak_tracks_transients(self):
        metrics = MetricsRecorder(enforce_budgets=False)
        metrics.set_base_bytes(100)
        metrics.allocate_transient(1000)
        metrics.release_transient(1000)
        assert metrics.peak_bytes == 1100
        assert metrics.base_bytes + metrics.transient_bytes == 100

    def test_oom_on_budget_breach(self):
        metrics = MetricsRecorder(memory_budget=500)
        with pytest.raises(OutOfMemoryError):
            metrics.allocate_transient(501)

    def test_timeout_on_budget_breach(self):
        metrics = MetricsRecorder(time_budget=1.0)
        with pytest.raises(EvaluationTimeout):
            metrics.advance(2.0)

    def test_budgets_not_enforced_when_disabled(self):
        metrics = MetricsRecorder(memory_budget=10, time_budget=0.1, enforce_budgets=False)
        metrics.allocate_transient(1_000_000)
        metrics.advance(100.0)  # no raise

    def test_memory_trace_records_samples(self):
        metrics = MetricsRecorder(enforce_budgets=False)
        metrics.set_base_bytes(10)
        metrics.advance(1.0)
        metrics.set_base_bytes(20)
        trace = metrics.memory_trace.as_tuples()
        assert trace[0][1] == 10.0
        assert trace[-1] == (1.0, 20.0)

    def test_memory_percent_trace(self):
        metrics = MetricsRecorder(memory_budget=1000, enforce_budgets=False)
        metrics.set_base_bytes(250)
        assert metrics.memory_percent_trace()[-1][1] == pytest.approx(25.0)

    def test_cpu_trace_spans_advance(self):
        metrics = MetricsRecorder(enforce_budgets=False)
        metrics.advance(2.0, utilization=0.75)
        samples = metrics.cpu_trace.samples
        assert samples[0].value == 0.75
        assert samples[-1].time == pytest.approx(2.0)

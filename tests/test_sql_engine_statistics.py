"""Statistics plumbing: ANALYZE modes through the SQL surface and OOF."""

import numpy as np
import pytest

from repro.engine.database import Database
from repro.storage.stats import StatsMode


@pytest.fixture
def db():
    database = Database(enforce_budgets=False)
    database.execute("CREATE TABLE t (a INT, b INT)")
    database.execute("INSERT INTO t VALUES (1, 10), (2, 20), (2, 30)")
    return database


class TestAnalyzeStatement:
    def test_analyze_updates_row_count(self, db):
        assert db.catalog.get_stats("t").num_rows == 0
        db.execute("ANALYZE t")
        assert db.catalog.get_stats("t").num_rows == 3

    def test_analyze_full_collects_columns(self, db):
        db.execute("ANALYZE t FULL")
        stats = db.catalog.get_stats("t")
        assert stats.analyzed_full
        assert stats.columns["a"].minimum == 1
        assert stats.columns["b"].maximum == 30

    def test_size_only_skips_columns(self, db):
        db.execute("ANALYZE t")
        assert not db.catalog.get_stats("t").analyzed_full

    def test_size_only_keeps_earlier_full_columns(self, db):
        """Regression: a plain ANALYZE after ANALYZE FULL used to throw
        away the column statistics; now it refreshes the row count and
        carries the (stale-stamped) column stats forward."""
        db.execute("ANALYZE t FULL")
        db.execute("INSERT INTO t VALUES (7, 70)")
        db.execute("ANALYZE t")
        stats = db.catalog.get_stats("t")
        assert stats.num_rows == 4  # size refreshed
        assert stats.analyzed_full
        assert stats.columns["a"].minimum == 1  # columns preserved (stale)
        assert stats.columns_table_version < stats.table_version

    def test_analyze_costs_time(self, db):
        before = db.sim_seconds
        db.execute("ANALYZE t FULL")
        assert db.sim_seconds > before

    def test_full_costlier_than_size_only(self):
        big = Database(enforce_budgets=False)
        big.load_table("x", ["a"], np.arange(200_000).reshape(-1, 1))
        before = big.sim_seconds
        big.analyze("x", full=False)
        size_cost = big.sim_seconds - before
        before = big.sim_seconds
        big.analyze("x", full=True)
        full_cost = big.sim_seconds - before
        assert full_cost > size_cost


class TestDedupUsesEstimates:
    def test_underestimated_buckets_slow_dedup(self):
        """Stale statistics (OOF-NA's failure mode): the dedup hash table
        is pre-allocated too small and pays collision chains."""
        def run(stale: bool) -> float:
            db = Database(enforce_budgets=False)
            db.create_table("m", ["a", "b"])
            db.append_rows("m", np.array([[1, 1]], dtype=np.int64))
            db.analyze("m")  # stats say: 1 row
            rows = np.arange(100_000, dtype=np.int64).reshape(-1, 2)
            db.append_rows("m", rows)
            if not stale:
                db.analyze("m")  # refresh: 50_001 rows
            before = db.sim_seconds
            db.dedup_table("m")
            return db.sim_seconds - before

        assert run(stale=True) > run(stale=False)

    def test_estimates_do_not_change_results(self):
        db = Database(enforce_budgets=False)
        db.create_table("m", ["a"])
        db.append_rows("m", np.array([[1], [1], [2]], dtype=np.int64))
        outcome = db.dedup_table("m")  # stats stale at 0 rows
        assert outcome.output_rows == 2


class TestStatsModeEnum:
    def test_modes_distinct(self):
        assert len({StatsMode.NONE, StatsMode.SIZE_ONLY, StatsMode.FULL}) == 3

"""The iteration-persistent join-state cache and its satellite fixes.

Acceptance criteria covered here:

* cache on/off reach byte-identical fixpoints (TC, SG, Andersen);
* checkpoint resume with the cache matches the uninterrupted run;
* per-iteration cost stays flat late in a long chain (cost ~ |Δ|, not
  |full|) and the ``join_cache.*`` counters land in the ProfileReport;
* stale-estimate fallback: rewrites (epoch bumps) force live row counts,
  appends legitimately keep statistics stale;
* dedup's transient pre-flight and actual allocation share one sizing
  rule, including the wide-tuple (unpackable) degradation.
"""

import numpy as np
import pytest

from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.core.setdiff_policy import DsdPolicy
from repro.engine.database import Database
from repro.engine.dedup import plan_transient, planned_transient_bytes
from repro.engine.joincache import INDEX_ROW_BYTES, JoinStateCache
from repro.obs.tracer import CATEGORY_ITERATION
from repro.programs import get_program
from repro.resilience import DegradationController, ResilienceContext

RELATIONAL = dict(pbme=PbmeMode.OFF)


def _graph(seed: int, nodes: int, edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, nodes, size=(edges, 2)).astype(np.int64)


@pytest.fixture
def tc_edb():
    return {"arc": _graph(11, 100, 320)}


@pytest.fixture
def sg_edb():
    return {"arc": _graph(5, 40, 90)}


@pytest.fixture
def aa_edb():
    rng = np.random.default_rng(3)

    def rel(count):
        return np.unique(rng.integers(0, 25, size=(count, 2)), axis=0)

    return {
        "addressOf": rel(18),
        "assign": rel(16),
        "load": rel(12),
        "store": rel(12),
    }


class TestIdenticalFixpoints:
    @pytest.mark.parametrize("program,edb", [("TC", "tc_edb"), ("SG", "sg_edb"), ("AA", "aa_edb")])
    def test_cache_on_off_byte_identical(self, program, edb, request):
        edb_data = request.getfixturevalue(edb)
        spec = get_program(program)
        cached = RecStep(RecStepConfig(**RELATIONAL, join_cache=True)).evaluate(
            spec, edb_data, dataset="jc"
        )
        plain = RecStep(RecStepConfig(**RELATIONAL, join_cache=False)).evaluate(
            spec, edb_data, dataset="jc"
        )
        assert cached.status == plain.status == "ok"
        assert cached.tuples == plain.tuples
        assert cached.iterations == plain.iterations

    def test_cache_saves_modeled_time(self, tc_edb):
        spec = get_program("TC")
        cached = RecStep(RecStepConfig(**RELATIONAL, join_cache=True)).evaluate(
            spec, tc_edb, dataset="jc"
        )
        plain = RecStep(RecStepConfig(**RELATIONAL, join_cache=False)).evaluate(
            spec, tc_edb, dataset="jc"
        )
        assert cached.sim_seconds < plain.sim_seconds

    def test_counters_reported(self, tc_edb):
        result = RecStep(RecStepConfig(**RELATIONAL, profile=True)).evaluate(
            get_program("TC"), tc_edb, dataset="jc"
        )
        counters = result.profile.counters
        assert counters.get("join_cache.miss", 0) > 0
        assert counters.get("join_cache.extend", 0) > 0
        assert counters.get("join_cache.extend_rows", 0) > 0
        disabled = RecStep(
            RecStepConfig(**RELATIONAL, profile=True, join_cache=False)
        ).evaluate(get_program("TC"), tc_edb, dataset="jc")
        assert not any(
            name.startswith("join_cache.") for name in disabled.profile.counters
        )


class TestCheckpointResume:
    def test_resume_with_cache_matches_uninterrupted(self, tmp_path, tc_edb):
        spec = get_program("TC")
        partial = RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
                deadline=0.1,
            )
        ).evaluate(spec, tc_edb, dataset="jc-ckpt")
        assert partial.status == "deadline"
        resumed = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path), profile=True)
        ).evaluate(spec, tc_edb, dataset="jc-ckpt")
        full = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
            spec, tc_edb, dataset="jc-ckpt"
        )
        assert resumed.status == full.status == "ok"
        assert resumed.tuples == full.tuples
        assert resumed.iterations == full.iterations
        # Rehydration rebuilt the full-table indexes before iterating.
        assert resumed.profile.counters.get("join_cache.miss", 0) > 0


class TestFlatLateIterations:
    @staticmethod
    def _iteration_durations(result) -> list[float]:
        durations = []
        for root in result.profile.roots:
            for span in root.walk():
                if span.category == CATEGORY_ITERATION:
                    durations.append(span.duration)
        return durations

    def test_late_iteration_cost_tracks_delta_not_full(self):
        """A pure chain: every iteration's Δ is one tuple while |full|
        grows linearly. With the cache, the per-iteration cost must stop
        growing with |full| — the tentpole's acceptance curve."""
        chain = np.array([[i, i + 1] for i in range(120)], dtype=np.int64)
        spec = get_program("TC")
        cached = RecStep(
            RecStepConfig(**RELATIONAL, profile=True, join_cache=True)
        ).evaluate(spec, {"arc": chain}, dataset="chain")
        plain = RecStep(
            RecStepConfig(**RELATIONAL, profile=True, join_cache=False)
        ).evaluate(spec, {"arc": chain}, dataset="chain")
        cached_durations = self._iteration_durations(cached)
        plain_durations = self._iteration_durations(plain)
        assert len(cached_durations) == len(plain_durations) > 40

        def late_growth(durations: list[float]) -> float:
            early = np.mean(durations[10:20])
            late = np.mean(durations[-10:])
            return late / early

        # |full| grows ~6x between the windows; the uncached run's
        # iterations get measurably slower while the cached run's do not.
        assert late_growth(cached_durations) < late_growth(plain_durations)
        assert late_growth(cached_durations) < 1.5
        # And the cached tail is absolutely cheaper.
        assert np.mean(cached_durations[-10:]) < np.mean(plain_durations[-10:])


class TestStaleEstimates:
    def test_rewrite_epoch_falls_back_to_live_count(self):
        db = Database(enforce_budgets=False)
        db.load_table("t", ("x", "y"), np.arange(200, dtype=np.int64).reshape(-1, 2))
        db.analyze("t")
        assert db.catalog.estimated_rows("t") == 100
        db.replace_rows("t", np.array([[1, 2]], dtype=np.int64))
        # Stats still describe the old contents, but the epoch mismatch
        # makes the estimate fall back to the live row count.
        assert db.catalog.get_stats("t").num_rows == 100
        assert db.catalog.estimated_rows("t") == 1

    def test_append_keeps_statistics_stale(self):
        db = Database(enforce_budgets=False)
        db.load_table("t", ("x", "y"), np.array([[1, 2]], dtype=np.int64))
        db.analyze("t")
        db.append_rows("t", np.arange(200, dtype=np.int64).reshape(-1, 2))
        # Appends bump the version but not the epoch: the OOF failure
        # mode (stale-but-valid statistics) is preserved by design.
        table = db.catalog.get_table("t")
        assert table.version > 0 and table.epoch == 0
        assert db.catalog.estimated_rows("t") == 1


class TestDedupSizing:
    def test_preflight_equals_actual_for_wide_tuples(self):
        # The satellite bug: the pre-flight assumed the compact CCK
        # sizing even when wide tuples degrade dedup to the generic
        # hash table. One rule now serves both sides.
        n, width = 1000, 2
        assert planned_transient_bytes(n, width, fast=True, packable=False) == (
            plan_transient(n, width, fast=False)
        )
        assert planned_transient_bytes(n, width, fast=True, packable=True) < (
            planned_transient_bytes(n, width, fast=True, packable=False)
        )

    def test_wide_tuples_trigger_lean_dedup_preflight(self):
        """Watermark regression: with unpackable 40-bit values the
        planned generic allocation breaches the soft watermark and dedup
        must take the lean path up front instead of blowing the budget
        mid-operation."""
        n = 2000
        rng = np.random.default_rng(9)
        # Two ~33-bit columns: 66 key bits, over the 63-bit CCK limit.
        wide = rng.integers(0, 1 << 33, size=(n, 2), dtype=np.int64)
        db = Database(
            enforce_budgets=False,
            memory_budget=120_000,
            resilience=ResilienceContext(
                degradation=DegradationController(enabled=True)
            ),
            profile=True,
            join_cache=False,
        )
        db.load_table("t", ("x", "y"), wide)
        db.analyze("t")
        cck_plan = plan_transient(n, 2, fast=True, packable=True)
        generic_plan = plan_transient(n, 2, fast=True, packable=False)
        # The regression window: the buggy CCK-sized pre-flight stays
        # under the soft watermark, the correct generic-sized one crosses it.
        assert db.metrics.budget_fraction(cck_plan) < db.metrics.soft_watermark
        assert db.metrics.budget_fraction(generic_plan) >= db.metrics.soft_watermark
        db.dedup_table("t")
        assert db.profiler.counters.get("dedup_lean_path") == 1


class TestDsdPolicyWithCache:
    def test_warm_cache_keeps_opsd_in_tpsd_territory(self):
        policy = DsdPolicy()
        # Deep TPSD territory classically: |R| huge, Δ tiny.
        assert policy.choose(100_000, 1) == "TPSD"
        # With a warm index the OPSD build is the 1-row extension.
        assert policy.choose(100_000, 1, cached_extension=1) == "OPSD"

    def test_cold_cache_changes_nothing(self):
        policy = DsdPolicy()
        # Extension == |R| (cold index): same decision as no cache.
        assert policy.choose(100_000, 1, cached_extension=100_000) == "TPSD"


class TestCacheMechanics:
    def test_memory_counted_as_resident(self):
        db = Database(enforce_budgets=False)
        rows = np.arange(400, dtype=np.int64).reshape(-1, 2)
        db.load_table("r", ("x", "y"), rows)
        db.load_table("s", ("x", "y"), rows)
        before = db.metrics.base_bytes
        entry, event = db.join_cache.acquire(db._context(), "r", ("x",))
        assert event == "miss"
        assert db.metrics.base_bytes == before + entry.memory_bytes()
        assert entry.memory_bytes() == 200 * INDEX_ROW_BYTES

    def test_extend_then_hit_then_rewrite_evicts(self):
        db = Database(enforce_budgets=False, profile=True)
        db.load_table("r", ("x", "y"), np.arange(100, dtype=np.int64).reshape(-1, 2))
        ctx = db._context()
        _, first = db.join_cache.acquire(ctx, "r", ("x",))
        db.append_rows("r", np.array([[5, 7]], dtype=np.int64))
        _, second = db.join_cache.acquire(ctx, "r", ("x",))
        _, third = db.join_cache.acquire(ctx, "r", ("x",))
        assert (first, second, third) == ("miss", "extend", "hit")
        db.replace_rows("r", np.array([[1, 2]], dtype=np.int64))
        assert len(db.join_cache) == 0  # rewrite evicted eagerly
        assert db.profiler.counters.get("join_cache.evict") == 1

    def test_domain_escape_rebuilds_not_corrupts(self):
        db = Database(enforce_budgets=False, profile=True)
        db.load_table("r", ("x", "y"), np.arange(100, dtype=np.int64).reshape(-1, 2))
        ctx = db._context()
        entry, _ = db.join_cache.acquire(ctx, "r", ("x", "y"))
        assert entry.codec is not None
        # Append a value far outside the padded domains.
        db.append_rows("r", np.array([[1 << 45, 7]], dtype=np.int64))
        entry, event = db.join_cache.acquire(ctx, "r", ("x", "y"))
        assert event == "rebuild"
        assert entry.rows_indexed == 51

    def test_wide_key_uses_dictionary(self):
        db = Database(enforce_budgets=False)
        wide = np.arange(60, dtype=np.int64).reshape(-1, 2) * (1 << 40)
        db.load_table("r", ("x", "y"), wide)
        ctx = db._context()
        entry, _ = db.join_cache.acquire(ctx, "r", ("x", "y"))
        assert entry.codec is None and entry.dictionary is not None
        db.append_rows("r", np.array([[7, 7]], dtype=np.int64))
        entry, event = db.join_cache.acquire(ctx, "r", ("x", "y"))
        assert event == "extend"  # dictionaries never overflow
        probe = entry.probe_codes(
            [np.array([7], dtype=np.int64), np.array([7], dtype=np.int64)]
        )
        assert probe[0] in entry.sorted_codes

    def test_empty_table_then_growth(self):
        db = Database(enforce_budgets=False)
        db.load_table("r", ("x", "y"), np.empty((0, 2), dtype=np.int64))
        ctx = db._context()
        entry, event = db.join_cache.acquire(ctx, "r", ("x",))
        assert event == "miss" and entry.rows_indexed == 0
        probe = entry.probe_codes([np.array([5], dtype=np.int64)])
        assert not bool(np.isin(probe, entry.sorted_codes).any())

    def test_disabled_cache_is_inert(self):
        cache = JoinStateCache(enabled=False)
        db = Database(enforce_budgets=False, join_cache=False)
        db.load_table("r", ("x", "y"), np.arange(10, dtype=np.int64).reshape(-1, 2))
        assert db.join_cache_extension("r") is None
        db.execute("SELECT r.x AS x FROM r r")
        assert len(db.join_cache) == 0
        assert len(cache) == 0


class TestDegradationShedsCache:
    def test_pressure_evicts_and_disables(self):
        controller = DegradationController(enabled=True)
        db = Database(
            enforce_budgets=False,
            resilience=ResilienceContext(degradation=controller),
            profile=True,
        )
        db.load_table("r", ("x", "y"), np.arange(100, dtype=np.int64).reshape(-1, 2))
        db.join_cache.acquire(db._context(), "r", ("x",))
        assert len(db.join_cache) == 1
        controller.on_pressure(1, 0.85)  # soft watermark crossing
        db._context()
        assert len(db.join_cache) == 0
        assert not db.join_cache.enabled
        assert "shed-join-cache" in controller.taken

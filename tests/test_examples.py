"""Every example script must run end to end (they are the quickstart docs)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # Examples use relative imports of nothing; run as __main__.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable: at least three examples

"""Tests for PBME: the packed bit matrix and TC/SG evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PbmeMode, RecStep, RecStepConfig
from repro.common.errors import DatalogError
from repro.core.bitmatrix import PackedBitMatrix, pbme_applicability
from repro.core.config import RecStepConfig as Config
from repro.datalog.parser import parse_program
from repro.datalog.analyzer import analyze_program
from repro.engine.database import Database
from repro.programs import get_program

pairs_strategy = st.lists(
    st.tuples(st.integers(0, 70), st.integers(0, 70)), min_size=0, max_size=120
)


class TestPackedBitMatrix:
    def test_set_and_test(self):
        matrix = PackedBitMatrix(100)
        matrix.set_pairs(np.array([1, 2]), np.array([64, 65]))
        assert matrix.test_pairs(np.array([1, 2, 1]), np.array([64, 65, 65])).tolist() == [
            True,
            True,
            False,
        ]

    def test_count(self):
        matrix = PackedBitMatrix(10)
        matrix.set_pairs(np.array([0, 0, 9]), np.array([0, 0, 9]))
        assert matrix.count() == 2  # duplicate set is idempotent

    def test_extract_pairs_roundtrip(self):
        matrix = PackedBitMatrix(130)
        rows = np.array([0, 63, 64, 129])
        cols = np.array([129, 64, 63, 0])
        matrix.set_pairs(rows, cols)
        extracted = {tuple(r) for r in matrix.extract_pairs().tolist()}
        assert extracted == {(0, 129), (63, 64), (64, 63), (129, 0)}

    def test_row_bits(self):
        matrix = PackedBitMatrix(70)
        matrix.set_pairs(np.array([3, 3]), np.array([0, 69]))
        assert matrix.row_bits(matrix.bits[3]).tolist() == [0, 69]

    def test_memory_bytes(self):
        matrix = PackedBitMatrix(128)
        assert matrix.memory_bytes() == 128 * 2 * 8  # 2 words per row

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            PackedBitMatrix(0)

    @given(pairs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_matches_python_set(self, pairs):
        matrix = PackedBitMatrix(71)
        if pairs:
            rows = np.array([p[0] for p in pairs])
            cols = np.array([p[1] for p in pairs])
            matrix.set_pairs(rows, cols)
        assert {tuple(r) for r in matrix.extract_pairs().tolist()} == set(pairs)
        assert matrix.count() == len(set(pairs))


class TestApplicability:
    def _decision(self, source, edb, config=None, budget=None):
        analyzed = analyze_program(parse_program(source))
        database = Database(enforce_budgets=False)
        if budget is not None:
            database.metrics.memory_budget = budget
        for name, rows in edb.items():
            database.load_table(name, ("c0", "c1"), np.asarray(rows))
        config = config or Config(enforce_budgets=False)
        return pbme_applicability(analyzed, analyzed.strata[0], database, config)

    def test_tc_shape_detected(self):
        dense = [[i, j] for i in range(20) for j in range(20) if i != j][:150]
        decision = self._decision(
            "tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).",
            {"arc": dense},
        )
        assert decision.applicable and decision.shape == "TC"

    def test_sg_shape_detected(self):
        dense = [[i, j] for i in range(20) for j in range(20) if i != j][:150]
        decision = self._decision(
            "sg(x,y) :- arc(p,x), arc(p,y), x != y. "
            "sg(x,y) :- arc(a,x), sg(a,b), arc(b,y).",
            {"arc": dense},
        )
        assert decision.applicable and decision.shape == "SG"

    def test_csda_shape_matches_tc_but_sparse_rejected(self):
        chain = [[i, i + 1] for i in range(5000)]
        decision = self._decision(
            "null(x,y) :- nullEdge(x,y). null(x,y) :- null(x,w), arc(w,y).",
            {"arc": chain, "nullEdge": chain[:3]},
        )
        assert not decision.applicable
        assert "sparse" in decision.reason

    def test_memory_fit_rejected(self):
        dense = [[i, j] for i in range(100) for j in range(100) if i != j]
        decision = self._decision(
            "tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).",
            {"arc": dense},
            budget=100,  # matrix cannot fit
        )
        assert not decision.applicable
        assert "memory" in decision.reason

    def test_non_tc_program_rejected(self):
        decision = self._decision(
            "r(x,y) :- e(x,y). r(x,y) :- r(x,z), r(z,y).",  # nonlinear
            {"e": [[0, 1]]},
        )
        assert not decision.applicable

    def test_pbme_off_always_rejected(self):
        dense = [[i, j] for i in range(20) for j in range(20) if i != j][:150]
        decision = self._decision(
            "tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).",
            {"arc": dense},
            config=Config(enforce_budgets=False, pbme=PbmeMode.OFF),
        )
        assert not decision.applicable

    def test_pbme_on_wrong_shape_raises(self):
        analyzed = analyze_program(
            parse_program("r(x,y) :- e(x,y). r(x,y) :- r(x,z), r(z,y).")
        )
        database = Database(enforce_budgets=False)
        database.load_table("e", ("c0", "c1"), np.array([[0, 1]]))
        with pytest.raises(DatalogError):
            pbme_applicability(
                analyzed,
                analyzed.strata[0],
                database,
                Config(enforce_budgets=False, pbme=PbmeMode.ON),
            )

    def test_negative_domain_rejected(self):
        decision = self._decision(
            "tc(x,y) :- arc(x,y). tc(x,y) :- tc(x,z), arc(z,y).",
            {"arc": [[-1, 2]]},
        )
        assert not decision.applicable


class TestPbmeEvaluation:
    @given(pairs_strategy)
    @settings(max_examples=20, deadline=None)
    def test_tc_pbme_matches_relational(self, pairs):
        edges = np.asarray([p for p in set(pairs) if p[0] != p[1]], dtype=np.int64)
        if edges.size == 0:
            return
        program = get_program("TC")
        on = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            program, {"arc": edges}, "t"
        )
        off = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF)).evaluate(
            program, {"arc": edges}, "t"
        )
        assert on.tuples["tc"] == off.tuples["tc"]

    def test_coordination_reports_shorter_makespan_under_skew(self):
        # A skewed star graph: one hub generates almost all SG work.
        rng = np.random.default_rng(0)
        hub_children = np.column_stack(
            [np.zeros(60, dtype=np.int64), rng.permutation(np.arange(1, 61))]
        )
        tail = np.array([[70 + i, 70 + i + 1] for i in range(8)])
        edges = np.vstack([hub_children, tail])
        program = get_program("SG")
        plain = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON, threads=8)
        ).evaluate(program, {"arc": edges}, "t")
        coord = RecStep(
            RecStepConfig(
                enforce_budgets=False, pbme=PbmeMode.ON, threads=8, sg_coordination=True
            )
        ).evaluate(program, {"arc": edges}, "t")
        assert coord.tuples["sg"] == plain.tuples["sg"]
        assert coord.sim_seconds <= plain.sim_seconds

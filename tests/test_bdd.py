"""Tests for the BDD package and relation encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bdd.bdd import ONE, ZERO, BddManager
from repro.baselines.bdd.encoding import BlockSpace
from repro.common.errors import EvaluationTimeout


class TestBddBasics:
    def test_terminals(self):
        manager = BddManager()
        assert manager.apply_and(ONE, ZERO) == ZERO
        assert manager.apply_or(ONE, ZERO) == ONE

    def test_reduction_identical_children(self):
        manager = BddManager()
        assert manager.mk(0, 5, 5) == 5

    def test_hash_consing(self):
        manager = BddManager()
        a = manager.mk(0, ZERO, ONE)
        b = manager.mk(0, ZERO, ONE)
        assert a == b

    def test_var_true_false_complementary(self):
        manager = BddManager()
        x = manager.var_true(0)
        not_x = manager.var_false(0)
        assert manager.apply_and(x, not_x) == ZERO
        assert manager.apply_or(x, not_x) == ONE

    def test_and_commutes(self):
        manager = BddManager()
        x, y = manager.var_true(0), manager.var_true(1)
        assert manager.apply_and(x, y) == manager.apply_and(y, x)

    def test_diff_semantics(self):
        manager = BddManager()
        x, y = manager.var_true(0), manager.var_true(1)
        x_and_y = manager.apply_and(x, y)
        assert manager.apply_diff(x, x) == ZERO
        assert manager.apply_diff(x_and_y, x) == ZERO
        assert manager.apply_diff(x, x_and_y) != ZERO

    def test_cube(self):
        manager = BddManager()
        cube = manager.cube({0: True, 1: False})
        assert manager.sat_count(cube, 2) == 1

    def test_exists_removes_variable(self):
        manager = BddManager()
        x, y = manager.var_true(0), manager.var_true(1)
        f = manager.apply_and(x, y)
        g = manager.exists(f, frozenset({0}))
        assert g == y

    def test_sat_count(self):
        manager = BddManager()
        x_or_y = manager.apply_or(manager.var_true(0), manager.var_true(1))
        assert manager.sat_count(x_or_y, 2) == 3
        assert manager.sat_count(ONE, 3) == 8
        assert manager.sat_count(ZERO, 3) == 0

    def test_size_counts_nodes(self):
        manager = BddManager()
        x = manager.var_true(0)
        assert manager.size(x) == 3  # node + two terminals

    def test_op_budget_enforced(self):
        manager = BddManager(max_ops=5)
        with pytest.raises(EvaluationTimeout):
            for i in range(10):
                manager.apply_or(manager.var_true(i), manager.var_true(i + 1))

    @given(st.lists(st.integers(0, 15), min_size=0, max_size=12, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_or_of_cubes_satcount(self, values):
        manager = BddManager()
        f = ZERO
        for value in values:
            cube = {bit: bool(value & (1 << bit)) for bit in range(4)}
            f = manager.apply_or(f, manager.cube(cube))
        assert manager.sat_count(f, 4) == len(values)


class TestBlockSpace:
    def test_encode_decode_roundtrip(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=4, num_blocks=4)
        rows = np.array([[1, 2], [3, 4], [15, 0]], dtype=np.int64)
        node = space.encode_rows(rows, [0, 1])
        decoded = space.decode(node, [0, 1])
        assert {tuple(r) for r in decoded.tolist()} == {(1, 2), (3, 4), (15, 0)}

    def test_decode_empty(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=2)
        assert space.decode(ZERO, [0, 1]).shape == (0, 2)

    def test_eq_bdd(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=2)
        eq = space.eq(0, 1)
        # Satisfying assignments of eq over 2 blocks are the 8 diagonal pairs.
        decoded = space.decode(eq, [0, 1])
        assert {tuple(r) for r in decoded.tolist()} == {(v, v) for v in range(8)}

    def test_constant_cube(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=4, num_blocks=2)
        node = space.constant_cube(0, 9)
        decoded = space.decode(node, [0])
        assert decoded.tolist() == [[9]]

    def test_rename_moves_block(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=3)
        rows = np.array([[1, 2], [5, 6]], dtype=np.int64)
        node = space.encode_rows(rows, [0, 1])
        renamed = space.rename(node, {0: 2})
        decoded = space.decode(renamed, [2, 1])
        assert {tuple(r) for r in decoded.tolist()} == {(1, 2), (5, 6)}

    def test_rename_identity_is_noop(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=2)
        node = space.encode_rows(np.array([[1, 2]], dtype=np.int64), [0, 1])
        assert space.rename(node, {0: 0, 1: 1}) == node

    def test_project_away(self):
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=2)
        rows = np.array([[1, 2], [1, 3]], dtype=np.int64)
        node = space.encode_rows(rows, [0, 1])
        projected = space.project_away(node, [1])
        decoded = space.decode(projected, [0])
        assert decoded.tolist() == [[1]]

    def test_sequential_ordering_larger_for_eq(self):
        """The hyperparameter sensitivity the paper mentions: a bad
        variable ordering inflates BDD sizes."""
        inter_manager = BddManager()
        interleaved = BlockSpace(inter_manager, bits=8, num_blocks=2, ordering="interleaved")
        seq_manager = BddManager()
        sequential = BlockSpace(seq_manager, bits=8, num_blocks=2, ordering="sequential")
        eq_interleaved = interleaved.eq(0, 1)
        eq_sequential = sequential.eq(0, 1)
        assert seq_manager.size(eq_sequential) > inter_manager.size(eq_interleaved)

    def test_too_many_bits_rejected(self):
        with pytest.raises(Exception):
            BlockSpace(BddManager(), bits=70, num_blocks=2)

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ValueError):
            BlockSpace(BddManager(), bits=3, num_blocks=2, ordering="random")


class TestJoinViaBdd:
    def test_manual_join(self):
        """tc(x,y) join arc(y,z) via rename + and + exists == real join."""
        manager = BddManager()
        space = BlockSpace(manager, bits=3, num_blocks=4)
        tc = np.array([[0, 1], [2, 3]], dtype=np.int64)
        arc = np.array([[1, 4], [3, 5], [1, 6]], dtype=np.int64)
        # blocks: x=0, y=1, z=2
        tc_node = space.encode_rows(tc, [0, 1])
        arc_node = space.rename(space.encode_rows(arc, [0, 1]), {0: 1, 1: 2})
        joined = manager.apply_and(tc_node, arc_node)
        projected = space.project_away(joined, [1])
        decoded = space.decode(projected, [0, 2])
        assert {tuple(r) for r in decoded.tolist()} == {(0, 4), (0, 6), (2, 5)}

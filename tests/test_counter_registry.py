"""Counter-registry drift guard.

Scans ``src/`` for every counter name the code can increment — literal
``inc("...")`` sites, the named ``COUNTER_*`` constants, and each
dynamic f-string site expanded over its finite domain — and asserts the
set exactly matches :data:`repro.obs.counters.KNOWN_COUNTERS`: no
unregistered counter, no dead registry entry. A new ``inc`` site fails
this test until the name is registered (and documented) in
KNOWN_COUNTERS; a removed site fails it until the stale entry is
deleted.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.engine import joincache
from repro.obs.counters import KNOWN_COUNTERS
from repro.resilience.degradation import LADDER

SRC = Path(__file__).parent.parent / "src"

#: Literal first-argument counter names: inc("name") / inc("name", n).
_LITERAL_INC = re.compile(r"""\.inc\(\s*["']([^"']+)["']""")

#: f-string first arguments: inc(f"...") — every one must be expandable
#: through the tables below. Quote types are matched separately so an
#: f-string may contain the other quote (f"...{x.replace('-', '_')}...").
_FSTRING_INC = re.compile(r"""\.inc\(\s*(?:f"([^"]+)"|f'([^']+)')""")

#: Conditional-expression sites: inc("a" if ... else "b").
_CONDITIONAL_INC = re.compile(
    r"""\.inc\(\s*\n?\s*["']([^"']+)["']\s+if\s+.*?\s+else\s+["']([^"']+)["']""",
    re.DOTALL,
)

#: Dict-indexed sites are resolved through the dict's literal values
#: (currently QueryService._REJECT_COUNTERS).
_REJECT_DICT = re.compile(r"_REJECT_COUNTERS\s*=\s*\{(.*?)\}", re.DOTALL)
_DICT_VALUES = re.compile(r"""["'][\w-]+["']\s*:\s*["']([\w.]+)["']""")

#: Expansion domains for each dynamic f-string placeholder expression.
#: When a new dynamic site appears, its placeholder must get a finite
#: domain here — that is the point: unbounded counter names don't pass.
_PHASE_KINDS = (
    "scan",
    "probe",
    "build",
    "dedup",
    "aggregate",
    "bitmatrix",
    "partition",
    "p_build",
    "p_probe",
    "p_dedup",
)
_FSTRING_DOMAINS: dict[str, tuple[str, ...]] = {
    "kind.name": _PHASE_KINDS,
    "strategy.lower()": ("opsd", "tpsd"),
    "phase_label": ("opsd", "tpsd_intersect", "tpsd_subtract"),
    "step.replace('-', '_')": tuple(step.replace("-", "_") for step in LADDER),
    "kind": ("max_iterations", "max_total_rows"),
}

_PLACEHOLDER = re.compile(r"\{([^{}]+)\}")


def _expand_fstring(template: str) -> set[str]:
    placeholders = _PLACEHOLDER.findall(template)
    assert placeholders, f"f-string inc with no placeholder: {template!r}"
    expanded = {template}
    for placeholder in placeholders:
        domain = _FSTRING_DOMAINS.get(placeholder)
        assert domain is not None, (
            f"dynamic counter site uses unknown placeholder {placeholder!r} "
            f"in {template!r}; add its finite domain to _FSTRING_DOMAINS"
        )
        expanded = {
            name.replace("{" + placeholder + "}", value)
            for name in expanded
            for value in domain
        }
    return expanded


def incremented_counter_names() -> set[str]:
    """Every counter name any inc() site in src/ can produce."""
    names: set[str] = set()
    for path in sorted(SRC.rglob("*.py")):
        text = path.read_text()
        names.update(_LITERAL_INC.findall(text))
        for a, b in _CONDITIONAL_INC.findall(text):
            names.update((a, b))
        for double_quoted, single_quoted in _FSTRING_INC.findall(text):
            names.update(_expand_fstring(double_quoted or single_quoted))
        if "_REJECT_COUNTERS[" in text:
            for body in _REJECT_DICT.findall(text):
                names.update(_DICT_VALUES.findall(body))
    # COUNTER_* constants (the join-cache site passes them by name).
    names.update(
        value
        for key, value in vars(joincache).items()
        if key.startswith("COUNTER_") and isinstance(value, str)
    )
    return names


def test_every_incremented_counter_is_registered():
    unregistered = incremented_counter_names() - set(KNOWN_COUNTERS)
    assert not unregistered, (
        "counters incremented in src/ but missing from KNOWN_COUNTERS "
        f"(register and describe them): {sorted(unregistered)}"
    )


def test_no_dead_registry_entries():
    dead = set(KNOWN_COUNTERS) - incremented_counter_names()
    assert not dead, (
        "KNOWN_COUNTERS entries no code increments any more "
        f"(delete the stale entries): {sorted(dead)}"
    )


def test_registry_descriptions_are_nonempty():
    for name, description in KNOWN_COUNTERS.items():
        assert description.strip(), f"counter {name!r} has an empty description"

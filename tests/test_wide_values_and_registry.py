"""Edge coverage: 64-bit values through the engine, and registry smoke."""

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.datasets import DATASETS, load_dataset
from repro.engine.database import Database
from repro.programs import get_program

BIG = 1 << 40  # beyond the 32-bit logical INT width


class TestWideValues:
    def test_join_on_wide_keys_falls_back_to_factorization(self):
        db = Database(enforce_budgets=False)
        rows = np.array([[BIG, 1], [BIG + 1, 2]], dtype=np.int64)
        db.load_table("a", ["k", "v"], rows)
        db.load_table("b", ["k", "v"], rows)
        out = db.execute("SELECT a.v AS x, b.v AS y FROM a, b WHERE a.k = b.k")
        assert sorted(map(tuple, out)) == [(1, 1), (2, 2)]

    def test_dedup_wide_rows(self):
        db = Database(enforce_budgets=False)
        rows = np.array([[BIG, BIG], [BIG, BIG], [0, 0]], dtype=np.int64)
        db.load_table("t", ["a", "b"], rows)
        outcome = db.dedup_table("t")
        assert outcome.output_rows == 2
        assert not outcome.used_compact_key  # too wide for the CCK

    def test_recstep_on_wide_domain(self):
        edges = np.array([[BIG, BIG + 1], [BIG + 1, BIG + 2]], dtype=np.int64)
        result = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF)
        ).evaluate(get_program("TC"), {"arc": edges}, "wide")
        assert result.tuples["tc"] == {
            (BIG, BIG + 1), (BIG + 1, BIG + 2), (BIG, BIG + 2),
        }

    def test_pbme_rejects_wide_domain(self):
        """PBME needs a small dense active domain; a 2^40 id cannot fit a
        bit matrix and AUTO must fall back to the relational path."""
        edges = np.array([[BIG, BIG + 1]], dtype=np.int64)
        result = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.AUTO)
        ).evaluate(get_program("TC"), {"arc": edges}, "wide")
        assert result.status == "ok"
        assert result.detail["pbme_strata"] == 0.0

    def test_negative_values_in_relational_path(self):
        edges = np.array([[-5, -4], [-4, -3]], dtype=np.int64)
        result = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.OFF)
        ).evaluate(get_program("TC"), {"arc": edges}, "neg")
        assert (-5, -3) in result.tuples["tc"]


class TestRegistrySmoke:
    @pytest.mark.parametrize(
        "name",
        ["G500", "G1K-0.1", "RMAT-10K", "livejournal", "andersen-1",
         "csda-httpd", "cspa-httpd"],
    )
    def test_every_family_loads_and_is_wellformed(self, name):
        data = load_dataset(name)
        assert data
        for relation, rows in data.items():
            assert rows.dtype == np.int64
            assert rows.ndim == 2
            assert rows.min(initial=0) >= 0

    def test_registry_names_unique_and_nonempty(self):
        assert len(DATASETS) >= 20
        assert all(isinstance(k, str) and k for k in DATASETS)

"""Differential testing: the SQL pipeline vs the array rule evaluator.

The repository contains two independent implementations of rule
evaluation — RecStep's Datalog→SQL→operators path and the baselines'
array-based evaluator. Random rules over random relations must produce
identical results through both, which cross-checks the compiler, the SQL
operators, and the kernels at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ruleeval import evaluate_rule
from repro.core.compiler import QueryGenerator
from repro.datalog.analyzer import analyze_program
from repro.datalog.parser import parse_program, parse_rule
from repro.engine import kernels
from repro.engine.database import Database
from repro.sql import ast as sast

relation_strategy = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=0, max_size=25
).map(lambda rows: np.asarray(sorted(set(rows)), dtype=np.int64).reshape(-1, 2))

RULES = [
    "out(x, y) :- e(x, y).",
    "out(y, x) :- e(x, y).",
    "out(x, z) :- e(x, y), f(y, z).",
    "out(x, z) :- e(x, y), f(y, z), x != z.",
    "out(x, y) :- e(x, y), x < y.",
    "out(x, x) :- e(x, y).",
    "out(x, y) :- e(x, y), !f(x, y).",
    "out(x, y) :- e(x, y), !f(y, x).",
    "out(x, w) :- e(x, y), f(y, z), e(z, w).",
    "out(x, y) :- e(x, 2), f(x, y).",
    "out(x, c) :- e(x, y), f(x, c), y <= c.",
    "out(y, x) :- e(x, y), f(x, _).",
]

AGG_RULES = [
    "out(x, MIN(y)) :- e(x, y).",
    "out(x, MAX(y)) :- e(x, y), f(y, z).",
    "out(x, COUNT(y)) :- e(x, y).",
    "out(x, SUM(y + 1)) :- e(x, y).",
]


def _run_sql_path(rule_text: str, e: np.ndarray, f: np.ndarray) -> set[tuple[int, ...]]:
    """Compile the rule as a one-rule program and run its init query."""
    program = analyze_program(parse_program(rule_text))
    compiled = QueryGenerator(program).compile()
    predicate = compiled[0].predicates[0]
    query = predicate.init_query()
    assert query is not None

    db = Database(enforce_budgets=False)
    db.load_table("e", ("c0", "c1"), e)
    if "f" in program.edb:
        db.load_table("f", ("c0", "c1"), f)
    rows = db.execute_ast(sast.SelectStatement(query))
    return {tuple(int(v) for v in row) for row in rows}


def _run_array_path(rule_text: str, e: np.ndarray, f: np.ndarray) -> set[tuple[int, ...]]:
    rule = parse_rule(rule_text)
    rows = evaluate_rule(rule, {"e": e, "f": f})
    return {tuple(int(v) for v in row) for row in rows}


class TestRuleDifferential:
    @pytest.mark.parametrize("rule_text", RULES)
    @given(e=relation_strategy, f=relation_strategy)
    @settings(max_examples=25, deadline=None)
    def test_sql_and_array_paths_agree(self, rule_text, e, f):
        assert _run_sql_path(rule_text, e, f) == _run_array_path(rule_text, e, f)

    @pytest.mark.parametrize("rule_text", AGG_RULES)
    @given(e=relation_strategy, f=relation_strategy)
    @settings(max_examples=15, deadline=None)
    def test_aggregated_rules_agree(self, rule_text, e, f):
        # The SQL path pre-aggregates per subquery; a single rule means
        # the grouped outputs must match the array evaluator exactly.
        assert _run_sql_path(rule_text, e, f) == _run_array_path(rule_text, e, f)


class TestSetDifferenceDifferential:
    @given(relation_strategy, relation_strategy)
    @settings(max_examples=25, deadline=None)
    def test_opsd_tpsd_and_kernel_agree(self, new_rows, old_rows):
        db = Database(enforce_budgets=False)
        db.load_table("new", ("a", "b"), new_rows)
        db.load_table("old", ("a", "b"), old_rows)
        opsd = db.set_difference("new", "old", "OPSD").delta
        tpsd = db.set_difference("new", "old", "TPSD").delta
        kernel = kernels.rows_difference(new_rows, old_rows)
        as_set = lambda rows: {tuple(map(int, r)) for r in rows}
        assert as_set(opsd) == as_set(tpsd) == as_set(kernel)

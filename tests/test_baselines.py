"""Tests for the baseline engines: rule evaluator, feature envelopes,
cross-engine equivalence, and cost-profile orderings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.harness import make_engine
from repro.baselines import (
    BddbddbLike,
    BigDatalogLike,
    GraspanLike,
    NaiveEngine,
    SouffleLike,
)
from repro.baselines.ruleeval import WorkCounters, evaluate_rule
from repro.datalog.parser import parse_rule
from repro.programs import get_program
from tests.conftest import reference_closure

edges_strategy = st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=30
).map(lambda pairs: np.asarray(sorted({p for p in pairs if p[0] != p[1]} or {(0, 1)}), dtype=np.int64))


class TestRuleEvaluator:
    def test_single_atom_projection(self):
        rule = parse_rule("p(y, x) :- e(x, y).")
        out = evaluate_rule(rule, {"e": np.array([[1, 2], [3, 4]])})
        assert {tuple(r) for r in out.tolist()} == {(2, 1), (4, 3)}

    def test_join_two_atoms(self):
        rule = parse_rule("p(x, z) :- e(x, y), e(y, z).")
        out = evaluate_rule(rule, {"e": np.array([[1, 2], [2, 3], [2, 4]])})
        assert {tuple(r) for r in out.tolist()} == {(1, 3), (1, 4)}

    def test_constant_in_atom(self):
        rule = parse_rule("p(y) :- e(1, y).")
        out = evaluate_rule(rule, {"e": np.array([[1, 2], [3, 4]])})
        assert out.tolist() == [[2]]

    def test_repeated_variable_in_atom(self):
        rule = parse_rule("p(x) :- e(x, x).")
        out = evaluate_rule(rule, {"e": np.array([[1, 1], [1, 2], [3, 3]])})
        assert {tuple(r) for r in out.tolist()} == {(1,), (3,)}

    def test_comparison(self):
        rule = parse_rule("p(x, y) :- e(x, y), x < y.")
        out = evaluate_rule(rule, {"e": np.array([[1, 2], [3, 1]])})
        assert out.tolist() == [[1, 2]]

    def test_arithmetic_comparison(self):
        rule = parse_rule("p(x) :- e(x, y), x + y = 5.")
        out = evaluate_rule(rule, {"e": np.array([[1, 4], [2, 2]])})
        assert out.tolist() == [[1]]

    def test_negation(self):
        rule = parse_rule("p(x) :- e(x, y), !blocked(x).")
        out = evaluate_rule(
            rule,
            {"e": np.array([[1, 2], [3, 4]]), "blocked": np.array([[1]])},
        )
        assert out.tolist() == [[3]]

    def test_negation_with_constants_only(self):
        rule = parse_rule("p(x) :- e(x, y), !flag(1).")
        relations = {"e": np.array([[5, 6]]), "flag": np.array([[1]])}
        assert evaluate_rule(rule, relations).shape[0] == 0
        relations["flag"] = np.array([[2]])
        assert evaluate_rule(rule, relations).tolist() == [[5]]

    def test_delta_substitution(self):
        rule = parse_rule("p(x, z) :- p(x, y), e(y, z).")
        full = {"p": np.array([[0, 1], [5, 6]]), "e": np.array([[1, 2], [6, 7]])}
        delta = {"p": np.array([[0, 1]])}
        out = evaluate_rule(rule, full, delta_atom=0, delta_relations=delta)
        assert {tuple(r) for r in out.tolist()} == {(0, 2)}

    def test_aggregate_head_groups(self):
        rule = parse_rule("g(x, MIN(y)) :- e(x, y).")
        out = evaluate_rule(rule, {"e": np.array([[1, 9], [1, 4], [2, 7]])})
        assert {tuple(r) for r in out.tolist()} == {(1, 4), (2, 7)}

    def test_cross_product(self):
        rule = parse_rule("p(x, y) :- a(x), b(y).")
        out = evaluate_rule(rule, {"a": np.array([[1], [2]]), "b": np.array([[8]])})
        assert {tuple(r) for r in out.tolist()} == {(1, 8), (2, 8)}

    def test_wildcards_ignored(self):
        rule = parse_rule("p(x) :- e(x, _).")
        out = evaluate_rule(rule, {"e": np.array([[1, 5], [1, 6]])})
        assert sorted(out.tolist()) == [[1], [1]]  # bag semantics

    def test_work_counters_accumulate(self):
        rule = parse_rule("p(x, z) :- e(x, y), e(y, z).")
        counters = WorkCounters()
        evaluate_rule(rule, {"e": np.array([[1, 2], [2, 3]])}, counters=counters)
        assert counters.joins == 1
        assert counters.tuples_scanned > 0
        assert counters.tuples_probed > 0


class TestFeatureEnvelopes:
    def test_souffle_rejects_recursive_aggregation_only(self):
        engine = SouffleLike(enforce_budgets=False)
        edges = np.array([[0, 1]])
        assert engine.evaluate(get_program("CC"), {"arc": edges}).status == "unsupported"
        assert engine.evaluate(get_program("GTC"), {"arc": edges}).status == "ok"
        assert engine.evaluate(get_program("NTC"), {"arc": edges}).status == "ok"

    def test_bigdatalog_rejects_mutual_recursion_only(self):
        engine = BigDatalogLike(enforce_budgets=False)
        edges = np.array([[0, 1]])
        cspa = engine.evaluate(
            get_program("CSPA"), {"assign": edges, "dereference": edges}
        )
        assert cspa.status == "unsupported"
        assert engine.evaluate(get_program("CC"), {"arc": edges}).status == "ok"

    def test_graspan_binary_no_agg_no_neg(self):
        engine = GraspanLike(enforce_budgets=False)
        edges = np.array([[0, 1]])
        assert engine.evaluate(get_program("GTC"), {"arc": edges}).status == "unsupported"
        assert engine.evaluate(get_program("NTC"), {"arc": edges}).status == "unsupported"
        assert engine.evaluate(get_program("TC"), {"arc": edges}).status == "ok"

    def test_bddbddb_rejects_aggregation_and_arithmetic(self):
        engine = BddbddbLike(enforce_budgets=False)
        edges = np.array([[0, 1]])
        assert engine.evaluate(get_program("CC"), {"arc": edges}).status == "unsupported"
        sssp_edb = {"arc": np.array([[0, 1, 1]]), "id": np.array([[0]])}
        assert engine.evaluate(get_program("SSSP"), sssp_edb).status == "unsupported"
        assert engine.evaluate(get_program("SG"), {"arc": edges}).status == "ok"


class TestCrossEngineEquivalence:
    ENGINES = ["RecStep", "Souffle", "BigDatalog", "Graspan", "bddbddb", "Naive"]

    @given(edges_strategy)
    @settings(max_examples=12, deadline=None)
    def test_all_engines_agree_on_tc(self, edges):
        expected = reference_closure(edges)
        for name in self.ENGINES:
            engine = make_engine(name, enforce_budgets=False)
            result = engine.evaluate(get_program("TC"), {"arc": edges}, "prop")
            assert result.status == "ok", name
            assert result.tuples["tc"] == expected, name

    @given(edges_strategy)
    @settings(max_examples=8, deadline=None)
    def test_supported_engines_agree_on_csda(self, edges):
        edb = {"nullEdge": edges[:2], "arc": edges}
        reference = None
        for name in self.ENGINES:
            engine = make_engine(name, enforce_budgets=False)
            result = engine.evaluate(get_program("CSDA"), edb, "prop")
            assert result.status == "ok", name
            if reference is None:
                reference = result.tuples["null"]
            else:
                assert result.tuples["null"] == reference, name

    def test_engines_agree_on_andersen(self, random_graph):
        edb = {
            "addressOf": random_graph[:10],
            "assign": random_graph[5:15],
            "load": random_graph[2:8],
            "store": random_graph[8:14],
        }
        results = {}
        for name in ["RecStep", "Souffle", "BigDatalog", "bddbddb", "Naive"]:
            engine = make_engine(name, enforce_budgets=False)
            outcome = engine.evaluate(get_program("AA"), edb, "test")
            assert outcome.status == "ok", name
            results[name] = outcome.tuples["pointsTo"]
        assert len({frozenset(v) for v in results.values()}) == 1


class TestCostOrdering:
    """Relative performance shapes on a mid-sized workload."""

    @pytest.fixture(scope="class")
    def tc_results(self):
        rng = np.random.default_rng(9)
        edges = np.unique(rng.integers(0, 250, size=(2200, 2)), axis=0)
        edges = edges[edges[:, 0] != edges[:, 1]]
        results = {}
        for name in ["RecStep", "Souffle", "BigDatalog", "Graspan"]:
            engine = make_engine(name, enforce_budgets=False)
            results[name] = engine.evaluate(get_program("TC"), {"arc": edges}, "t")
        return results

    def test_recstep_beats_scaleup_baselines(self, tc_results):
        recstep = tc_results["RecStep"].sim_seconds
        for name in ("Souffle", "BigDatalog", "Graspan"):
            assert tc_results[name].sim_seconds > recstep, name

    def test_graspan_slowest(self, tc_results):
        slowest = max(tc_results.values(), key=lambda r: r.sim_seconds)
        assert slowest.engine in ("Graspan", "BigDatalog")

    def test_memory_overhead_ordering(self, tc_results):
        """BigDatalog (RDDs) models more resident memory than RecStep."""
        assert (
            tc_results["BigDatalog"].peak_memory_bytes
            > tc_results["RecStep"].peak_memory_bytes
        )

    def test_all_produced_same_fixpoint(self, tc_results):
        sizes = {len(r.tuples["tc"]) for r in tc_results.values()}
        assert len(sizes) == 1


class TestDistributedBigDatalog:
    def test_distributed_gets_more_memory_and_threads(self):
        local = BigDatalogLike(memory_budget=1000)
        distributed = BigDatalogLike(distributed=True, memory_budget=1000)
        assert distributed.memory_budget > local.memory_budget
        assert distributed.profile.threads > local.profile.threads
        assert distributed.name == "Distributed-BigDatalog"

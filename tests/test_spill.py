"""The spill-to-disk storage tier: degrade to disk, not to shed work.

The acceptance triangle of the out-of-core tier:

* segment files have checkpoint-grade durability — tmp + fsync +
  ``os.replace`` publishes, CRC32 validation, torn files quarantined and
  surfaced as structured :class:`SpillError`, never silently read;
* running out of disk (real budget or injected ENOSPC) is not an error:
  the table stays resident, ``capacity_exhausted`` is set, and the
  ladder moves on — work is shed only when disk is *also* exhausted;
* fixpoints are bit-identical spill on/off — for TC, SG and Andersen,
  under chaos, and across a checkpoint interrupt/resume — and a
  workload that OOMs at a memory budget completes under the same budget
  with the spill tier, strictly slower.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import SpillError
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program
from repro.resilience import DegradationController, FaultInjector, ResilienceContext
from repro.storage.spill import SPILL_SEGMENT_ROWS, SpillManager
from repro.storage.table import make_table

RELATIONAL = dict(pbme=PbmeMode.OFF)

#: Calibrated so the cycle-TC fixpoint (90000 rows, 720 KB modeled)
#: cannot stay resident but completes by evicting cold prefixes.
TC_BUDGET = 550_000
SG_BUDGET = 500_000


def cycle(n: int) -> np.ndarray:
    """A directed n-cycle: TC fixpoint is all n^2 pairs, reached in ~n
    iterations of small deltas — base-dominated, the spill tier's home
    turf."""
    src = np.arange(n, dtype=np.int64)
    return np.stack([src, (src + 1) % n], axis=1)


def sg_caterpillar(m: int, n: int) -> dict[str, np.ndarray]:
    """m parallel chains of length n under a common root: the SG
    fixpoint accumulates one generation of m^2 pairs per iteration."""
    edges = [(0, i + 1) for i in range(m)]
    node = m + 1
    heads = list(range(1, m + 1))
    for _ in range(n - 1):
        grown = []
        for head in heads:
            edges.append((head, node))
            grown.append(node)
            node += 1
        heads = grown
    return {"arc": np.array(edges, dtype=np.int64)}


def aa_chain(n_vars: int, n_objs: int) -> dict[str, np.ndarray]:
    """An assignment chain: pts grows by one variable per iteration."""
    assign = np.array([(i + 1, i) for i in range(n_vars - 1)], dtype=np.int64)
    address = np.array([(0, n_vars + j) for j in range(n_objs)], dtype=np.int64)
    empty = np.empty((0, 2), dtype=np.int64)
    return {"addressOf": address, "assign": assign, "load": empty, "store": empty}


def _run(program, data, **overrides):
    config = dict(RELATIONAL)
    config.update(overrides)
    return RecStep(RecStepConfig(**config)).evaluate(
        get_program(program), data, dataset=f"{program.lower()}-spill"
    )


# ---------------------------------------------------------------------------
# Segment files: durability, torn reads, disk exhaustion
# ---------------------------------------------------------------------------


def _spilled_table(tmp_path, rows: int = 1000):
    table = make_table("t", ("a", "b"))
    data = np.arange(2 * rows, dtype=np.int64).reshape(rows, 2)
    table.append_array(data)
    manager = SpillManager(tmp_path / "spill")
    table.bind_spill(manager)
    return table, manager, data


class TestSegmentFiles:
    def test_spill_and_fault_in_roundtrip(self, tmp_path):
        table, manager, data = _spilled_table(tmp_path, rows=1000)
        spilled = manager.spill_table(table)
        assert spilled == 1000
        assert table.resident_rows == 0
        assert table.spilled_rows == 1000
        files = list((tmp_path / "spill").glob("*.spill"))
        assert len(files) == 1
        # The universal backstop: data() rehydrates transparently...
        assert np.array_equal(table.data(), data)
        # ...and the files are gone once absorbed.
        assert table.spilled_rows == 0
        assert not list((tmp_path / "spill").glob("*.spill"))
        assert manager.spilled_bytes() == 0

    def test_large_prefix_splits_into_segments(self, tmp_path):
        rows = 2 * SPILL_SEGMENT_ROWS + 7
        table, manager, data = _spilled_table(tmp_path, rows=rows)
        assert manager.spill_table(table) == rows
        segments = manager.segments("t")
        assert len(segments) == 3
        assert [s.start_row for s in segments] == [
            0,
            SPILL_SEGMENT_ROWS,
            2 * SPILL_SEGMENT_ROWS,
        ]
        assert sum(s.num_rows for s in segments) == rows
        assert np.array_equal(table.data(), data)

    def test_resident_tail_stays_appendable(self, tmp_path):
        table, manager, data = _spilled_table(tmp_path, rows=1000)
        manager.spill_table(table, max_rows=600)
        assert table.spilled_rows == 600
        assert table.resident_rows == 400
        tail = np.array([[9999, 9998]], dtype=np.int64)
        table.append_array(tail)
        expected = np.concatenate([data, tail])
        assert np.array_equal(table.data(), expected)

    def test_snapshot_prefix_preserves_residency(self, tmp_path):
        table, manager, data = _spilled_table(tmp_path, rows=1000)
        manager.spill_table(table)
        prefix = manager.snapshot_prefix(table)
        assert np.array_equal(prefix, data)
        # Still spilled: checkpointing must not rehydrate cold tables.
        assert table.spilled_rows == 1000
        assert list((tmp_path / "spill").glob("*.spill"))

    @pytest.mark.parametrize("corruption", ["truncate", "bitflip"])
    def test_torn_segment_quarantined(self, tmp_path, corruption):
        table, manager, _ = _spilled_table(tmp_path, rows=1000)
        manager.spill_table(table)
        (segment,) = manager.segments("t")
        raw = segment.path.read_bytes()
        if corruption == "truncate":
            segment.path.write_bytes(raw[:64])
        else:
            middle = len(raw) // 2
            segment.path.write_bytes(
                raw[:middle] + bytes([raw[middle] ^ 0xFF]) + raw[middle + 1 :]
            )
        with pytest.raises(SpillError) as excinfo:
            manager.read_segment(table, segment)
        context = excinfo.value.context
        assert context["table"] == "t"
        assert context["segment"] == segment.path.name
        assert context["start_row"] == 0
        # Quarantined, never silently read: the evidence survives.
        assert not segment.path.exists()
        assert segment.path.with_suffix(".quarantine").exists()

    def test_cleanup_sweeps_quarantined_segments(self, tmp_path):
        from repro.obs.counters import CounterRegistry

        table, manager, _ = _spilled_table(tmp_path, rows=1000)
        counters = CounterRegistry()
        manager._counters = counters
        manager.spill_table(table)
        (segment,) = manager.segments("t")
        segment.path.write_bytes(segment.path.read_bytes()[:64])
        with pytest.raises(SpillError):
            manager.read_segment(table, segment)
        quarantined = segment.path.with_suffix(".quarantine")
        assert quarantined.exists()
        # Session release ends the quarantine file's forensic life: the
        # sweep removes it so sessions don't accumulate litter.
        manager.cleanup()
        assert not quarantined.exists()
        assert not manager.directory.exists()
        assert counters.get("spill.quarantine_swept") == 1

    def test_disk_budget_exhaustion_keeps_table_resident(self, tmp_path):
        table, manager, data = _spilled_table(tmp_path, rows=1000)
        manager.disk_budget = 1  # nothing fits
        assert manager.spill_table(table) == 0
        assert manager.capacity_exhausted
        assert table.resident_rows == 1000
        assert table.spilled_rows == 0
        assert not list((tmp_path / "spill").glob("*.spill"))
        assert np.array_equal(table.data(), data)

    def test_injected_enospc_keeps_table_resident(self, tmp_path):
        table, manager, data = _spilled_table(tmp_path, rows=1000)
        # Near-certain rate: seed 7's first disk-full draw fires.
        manager.bind(
            metrics=None,
            counters=None,
            resilience=ResilienceContext(
                injector=FaultInjector(7, rate=0.999),
                degradation=DegradationController(enabled=False),
            ),
        )
        assert manager.spill_table(table) == 0
        assert manager.capacity_exhausted
        assert table.resident_rows == 1000
        assert np.array_equal(table.data(), data)

    def test_discard_removes_files_unread(self, tmp_path):
        table, manager, _ = _spilled_table(tmp_path, rows=1000)
        manager.spill_table(table)
        assert manager.discard("t") == 1
        assert not list((tmp_path / "spill").glob("*.spill"))
        assert manager.spilled_bytes() == 0


# ---------------------------------------------------------------------------
# Engine: OOM without the tier, done with it, bit-identical fixpoints
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tc_data():
    return {"arc": cycle(300)}


@pytest.fixture(scope="module")
def tc_reference(tc_data):
    """The uncontended fixpoint every spill variant must reproduce."""
    result = _run("TC", tc_data)
    assert result.status == "ok"
    return result


@pytest.fixture(scope="module")
def tc_spilled(tc_data, tmp_path_factory):
    spill_dir = tmp_path_factory.mktemp("tc") / "spill"
    result = _run(
        "TC",
        tc_data,
        memory_budget=TC_BUDGET,
        degradation=True,
        spill_dir=str(spill_dir),
    )
    return result, spill_dir


class TestSpillRung:
    def test_previously_oom_workload_completes(self, tc_data, tc_reference, tc_spilled):
        # The whole point of the tier: same budget, the full ladder
        # without spill sheds the work; with spill it completes.
        plain = _run("TC", tc_data, memory_budget=TC_BUDGET, degradation=True)
        assert plain.status == "oom"
        assert plain.failure["kind"] == "oom"

        spilled, _ = tc_spilled
        assert spilled.status == "ok"
        assert spilled.tuples == tc_reference.tuples

    def test_spill_is_slower_never_wrong(self, tc_reference, tc_spilled):
        spilled, _ = tc_spilled
        recap = spilled.resilience["spill"]
        assert recap["peak_spilled_bytes"] > 0
        assert not recap["capacity_exhausted"]
        # The I/O is on the books: strictly slower than uncontended.
        assert spilled.sim_seconds > tc_reference.sim_seconds

    def test_spill_rung_visible_in_counters(self, tc_data, tmp_path):
        result = _run(
            "TC",
            tc_data,
            memory_budget=TC_BUDGET,
            degradation=True,
            spill_dir=str(tmp_path / "spill"),
            profile=True,
        )
        assert result.status == "ok"
        counters = result.profile.counters
        assert counters["degradation_spill_cold_tables"] > 0
        assert counters["spill.segments_written"] > 0
        assert counters["spill.segment_reads"] > 0
        recap = result.resilience["spill"]
        assert recap["tables_spilled"] > 0
        assert recap["segments_written"] == counters["spill.segments_written"]

    def test_spill_directory_cleaned_after_run(self, tc_spilled):
        _, spill_dir = tc_spilled
        assert not spill_dir.exists() or not list(spill_dir.iterdir())

    def test_pbme_auto_defers_to_spill_tier(self, tc_data, tc_reference, tmp_path):
        # In AUTO mode the dense cycle graph is PBME-eligible, but the
        # materialized closure cannot stay resident at this budget: with
        # a spill tier bound in, the stratum stays relational and
        # completes instead of OOMing on extraction.
        result = RecStep(
            RecStepConfig(
                memory_budget=TC_BUDGET,
                degradation=True,
                spill_dir=str(tmp_path / "spill"),
            )
        ).evaluate(get_program("TC"), tc_data, dataset="tc-auto")
        assert result.status == "ok"
        assert result.tuples == tc_reference.tuples
        assert result.resilience["spill"]["peak_spilled_bytes"] > 0


class TestFixpointIdentityMatrix:
    def test_sg_oom_without_done_with(self, tmp_path):
        data = sg_caterpillar(40, 60)
        reference = _run("SG", data)
        assert reference.status == "ok"
        plain = _run("SG", data, memory_budget=SG_BUDGET, degradation=True)
        assert plain.status == "oom"
        spilled = _run(
            "SG",
            data,
            memory_budget=SG_BUDGET,
            degradation=True,
            spill_dir=str(tmp_path / "spill"),
        )
        assert spilled.status == "ok"
        assert spilled.tuples == reference.tuples
        assert spilled.resilience["spill"]["peak_spilled_bytes"] > 0

    def test_aa_identity_with_spill_tier_bound(self, tmp_path):
        # Andersen keeps its pts relation hot in its own rules (it is a
        # join source every iteration), so the rung rightly never evicts
        # it — the identity contract still holds with the tier bound in
        # under a tight-but-survivable budget.
        data = aa_chain(400, 60)
        reference = _run("AA", data)
        assert reference.status == "ok"
        spilled = _run(
            "AA",
            data,
            memory_budget=220_000,
            degradation=True,
            spill_dir=str(tmp_path / "spill"),
        )
        assert spilled.status == "ok"
        assert spilled.tuples == reference.tuples

    def test_chaos_identity(self, tc_data, tc_reference, tmp_path):
        # Deterministic faults at the spill I/O sites (write, read,
        # ENOSPC draws) retry or fall back — same fixpoint, never wrong.
        result = _run(
            "TC",
            tc_data,
            memory_budget=TC_BUDGET,
            degradation=True,
            spill_dir=str(tmp_path / "spill"),
            fault_seed=42,
        )
        assert result.status == "ok"
        assert result.tuples == tc_reference.tuples
        assert result.resilience["faults_injected"] > 0


class TestCheckpointResumeWithSpill:
    def test_interrupt_mid_spill_resume_identical(
        self, tc_data, tc_reference, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        interrupted = _run(
            "TC",
            tc_data,
            memory_budget=TC_BUDGET,
            degradation=True,
            spill_dir=str(tmp_path / "spill-a"),
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=8,
            deadline=6.0,
        )
        assert interrupted.status == "deadline"
        # The interrupt landed while blocks were on disk.
        assert interrupted.resilience["spill"]["peak_spilled_bytes"] > 0

        resumed = _run(
            "TC",
            tc_data,
            memory_budget=TC_BUDGET,
            degradation=True,
            spill_dir=str(tmp_path / "spill-b"),
            resume_from=checkpoint_dir,
        )
        assert resumed.status == "ok"
        assert resumed.tuples == tc_reference.tuples
        assert resumed.resilience["resumed_from"]["iteration"] > 0

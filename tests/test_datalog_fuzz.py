"""Fuzz-ish robustness tests: malformed inputs must fail cleanly.

Every syntactically broken program or SQL statement must raise a typed
library error (never an unhandled TypeError/IndexError), and valid inputs
survive a parse -> str -> parse round trip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import DatalogError, ReproError, SqlSyntaxError
from repro.datalog.parser import parse_program
from repro.sql.parser import parse_statement

BROKEN_DATALOG = [
    "tc(x, y)",                      # missing period
    "tc(x, y) :- .",                 # empty body
    "tc(x,) :- arc(x, y).",          # dangling comma
    ":- arc(x, y).",                 # missing head
    "tc(x, y) :- arc(x y).",         # missing comma
    "tc((x), y) :- arc(x, y).",      # parenthesized term
    "tc(x, y) :- !(arc(x, y)).",     # negation of parenthesized
    "tc(x, y) :- arc(x, y) arc(y, z).",  # missing separator
    "tc(x, MIN(y) :- arc(x, y).",    # unbalanced parens
    "tc(x, y) :- x.",                # bare variable literal
    "tc(x, y] :- arc(x, y).",        # stray bracket
]

BROKEN_SQL = [
    "SELECT FROM t",
    "SELECT a. FROM t",
    "INSERT t VALUES (1)",
    "CREATE TABLE (x INT)",
    "SELECT a.x AS FROM t",
    "SELECT a.x AS x FROM t WHERE",
    "SELECT a.x AS x FROM t GROUP",
    "DELETE t",
    "SELECT a.x AS x FROM t UNION SELECT a.x AS x FROM t",  # bare UNION
    "INSERT INTO t VALUES (1,)",
]


class TestBrokenInputs:
    @pytest.mark.parametrize("source", BROKEN_DATALOG)
    def test_broken_datalog_raises_typed_error(self, source):
        with pytest.raises(ReproError):
            parse_program(source)

    @pytest.mark.parametrize("source", BROKEN_SQL)
    def test_broken_sql_raises_typed_error(self, source):
        with pytest.raises(SqlSyntaxError):
            parse_statement(source)

    @given(st.text(alphabet="():-,.!<>=+*%abcxyz123 \n", max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes_datalog_parser(self, text):
        try:
            parse_program(text)
        except ReproError:
            pass  # typed failure is the contract

    @given(st.text(alphabet="SELECTFROMWHERE(),.*=<>-+; abcxyz01", max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes_sql_parser(self, text):
        try:
            parse_statement(text)
        except ReproError:
            pass


VALID_PROGRAMS = [
    "tc(x, y) :- arc(x, y). tc(x, y) :- tc(x, z), arc(z, y).",
    "p(x) :- q(x), !r(x).",
    "g(x, COUNT(y)) :- e(x, y).",
    "d(y, MIN(v + w)) :- d(x, v), e(x, y, w). d(x, MIN(0)) :- s(x).",
    "sg(x, y) :- arc(p, x), arc(p, y), x != y.",
    "f(1, 2). f(3, -4).",
    "u(x) :- e(x, _), x >= 0.",
]


class TestRoundTrips:
    @pytest.mark.parametrize("source", VALID_PROGRAMS)
    def test_datalog_parse_str_parse_fixpoint(self, source):
        once = parse_program(source)
        twice = parse_program(str(once))
        assert str(once) == str(twice)

    def test_sql_round_trip_with_not_exists(self):
        text = (
            "SELECT n1.x AS c0 FROM node n1 WHERE NOT EXISTS "
            "(SELECT 1 FROM tc WHERE tc.x = n1.x)"
        )
        once = parse_statement(text)
        twice = parse_statement(str(once.query))
        assert str(once.query) == str(twice.query)

"""Integration tests for the Database facade (SQL end to end)."""

import numpy as np
import pytest

from repro.common.errors import CatalogError, OutOfMemoryError, PlanError
from repro.engine import Database


@pytest.fixture
def db() -> Database:
    database = Database(enforce_budgets=False)
    database.execute("CREATE TABLE arc (x INT, y INT)")
    database.execute("INSERT INTO arc VALUES (1,2),(2,3),(3,4),(1,3)")
    return database


class TestDdlAndDml:
    def test_create_insert_select(self, db):
        rows = db.execute("SELECT a.x AS x, a.y AS y FROM arc a")
        assert sorted(map(tuple, rows)) == [(1, 2), (1, 3), (2, 3), (3, 4)]

    def test_insert_select_appends(self, db):
        db.execute("CREATE TABLE copy (x INT, y INT)")
        db.execute("INSERT INTO copy SELECT a.x AS x, a.y AS y FROM arc a")
        db.execute("INSERT INTO copy SELECT a.x AS x, a.y AS y FROM arc a")
        assert db.table_size("copy") == 8  # bag semantics

    def test_delete_from_truncates(self, db):
        db.execute("DELETE FROM arc")
        assert db.table_size("arc") == 0

    def test_drop_table(self, db):
        db.execute("DROP TABLE arc")
        with pytest.raises(CatalogError):
            db.table_array("arc")

    def test_load_table_bulk(self, db):
        rows = np.array([[9, 9], [8, 8]])
        db.load_table("bulk", ["x", "y"], rows)
        assert db.table_size("bulk") == 2


class TestQueries:
    def test_self_join(self, db):
        out = db.execute(
            "SELECT a1.x AS x, a2.y AS y FROM arc a1, arc a2 WHERE a1.y = a2.x"
        )
        assert sorted(map(tuple, out)) == [(1, 3), (1, 4), (2, 4)]

    def test_filter_constants(self, db):
        out = db.execute("SELECT a.y AS y FROM arc a WHERE a.x = 1")
        assert sorted(map(tuple, out)) == [(2,), (3,)]

    def test_inequality_filter(self, db):
        out = db.execute("SELECT a.x AS x, a.y AS y FROM arc a WHERE a.y - a.x > 1")
        assert sorted(map(tuple, out)) == [(1, 3)]

    def test_cross_join(self, db):
        db.execute("CREATE TABLE n (v INT)")
        db.execute("INSERT INTO n VALUES (1),(2)")
        out = db.execute("SELECT a.v AS a, b.v AS b FROM n a, n b")
        assert out.shape[0] == 4

    def test_union_all_keeps_duplicates(self, db):
        out = db.execute(
            "SELECT a.x AS v FROM arc a UNION ALL SELECT a.x AS v FROM arc a"
        )
        assert out.shape[0] == 8

    def test_union_width_mismatch_rejected(self, db):
        with pytest.raises(PlanError):
            db.execute(
                "SELECT a.x AS v FROM arc a UNION ALL "
                "SELECT a.x AS v, a.y AS w FROM arc a"
            )

    def test_group_by_count(self, db):
        out = db.execute("SELECT a.x AS x, COUNT(a.y) AS c FROM arc a GROUP BY a.x")
        assert dict(map(tuple, out)) == {1: 2, 2: 1, 3: 1}

    def test_group_by_min_with_expression(self, db):
        out = db.execute(
            "SELECT a.x AS x, MIN(a.y + 10) AS m FROM arc a GROUP BY a.x"
        )
        assert dict(map(tuple, out)) == {1: 12, 2: 13, 3: 14}

    def test_not_exists_anti_join(self, db):
        db.execute("CREATE TABLE node (v INT)")
        db.execute("INSERT INTO node VALUES (1),(2),(3),(4)")
        out = db.execute(
            "SELECT n.v AS v FROM node n WHERE NOT EXISTS "
            "(SELECT 1 FROM arc WHERE arc.x = n.v)"
        )
        assert sorted(map(tuple, out)) == [(4,)]

    def test_distinct(self, db):
        out = db.execute("SELECT DISTINCT a.x AS x FROM arc a")
        assert sorted(map(tuple, out)) == [(1,), (2,), (3,)]

    def test_unqualified_column_resolution(self, db):
        out = db.execute("SELECT x AS x FROM arc WHERE y = 4")
        assert sorted(map(tuple, out)) == [(3,)]

    def test_ambiguous_column_rejected(self, db):
        db.execute("CREATE TABLE arc2 (x INT, y INT)")
        db.execute("INSERT INTO arc2 VALUES (5, 6)")
        with pytest.raises(PlanError):
            db.execute("SELECT x AS x FROM arc a, arc2 b WHERE a.y = b.x")

    def test_empty_result_shape(self, db):
        out = db.execute("SELECT a.x AS x FROM arc a WHERE a.x = 99")
        assert out.shape == (0, 1)


class TestSpecializedOps:
    def test_dedup_table(self, db):
        db.execute("INSERT INTO arc VALUES (1,2),(1,2)")
        outcome = db.dedup_table("arc")
        assert outcome.input_rows == 6
        assert outcome.output_rows == 4

    def test_set_difference_strategies_agree(self, db):
        db.execute("CREATE TABLE new (x INT, y INT)")
        db.execute("INSERT INTO new VALUES (1,2),(7,7),(8,8),(7,7)")
        opsd = db.set_difference("new", "arc", "OPSD")
        tpsd = db.set_difference("new", "arc", "TPSD")
        expected = {(7, 7), (8, 8)}
        assert {tuple(r) for r in opsd.delta.tolist()} == expected
        assert {tuple(r) for r in tpsd.delta.tolist()} == expected
        assert tpsd.intersection_size == 1

    def test_unknown_strategy_rejected(self, db):
        db.execute("CREATE TABLE new (x INT, y INT)")
        with pytest.raises(PlanError):
            db.set_difference("new", "arc", "MAGIC")

    def test_aggregate_merge_min(self, db):
        db.execute("CREATE TABLE best (k INT, v INT)")
        db.execute("INSERT INTO best VALUES (1, 10), (2, 20)")
        merged, improved = db.aggregate_merge(
            "best", np.array([[1, 5], [2, 25], [3, 7]]), "MIN"
        )
        assert {tuple(r) for r in merged.tolist()} == {(1, 5), (2, 20), (3, 7)}
        assert {tuple(r) for r in improved.tolist()} == {(1, 5), (3, 7)}

    def test_aggregate_merge_max(self, db):
        db.execute("CREATE TABLE best (k INT, v INT)")
        db.execute("INSERT INTO best VALUES (1, 10)")
        _, improved = db.aggregate_merge("best", np.array([[1, 99]]), "MAX")
        assert improved.tolist() == [[1, 99]]

    def test_aggregate_merge_rejects_count(self, db):
        db.execute("CREATE TABLE best (k INT, v INT)")
        with pytest.raises(PlanError):
            db.aggregate_merge("best", np.empty((0, 2)), "COUNT")


class TestMetering:
    def test_clock_advances_with_queries(self, db):
        before = db.sim_seconds
        db.execute("SELECT a.x AS x FROM arc a")
        assert db.sim_seconds > before

    def test_query_counter(self, db):
        count = db.queries_executed
        db.execute("SELECT a.x AS x FROM arc a")
        assert db.queries_executed == count + 1

    def test_memory_budget_enforced(self):
        small = Database(memory_budget=1_000, enforce_budgets=True)
        small.create_table("t", ["a", "b"])
        with pytest.raises(OutOfMemoryError):
            small.load_table("big", ["a", "b"], np.ones((1_000, 2), dtype=np.int64))

    def test_peak_memory_tracked(self, db):
        db.execute("SELECT a.x AS x, b.y AS y FROM arc a, arc b WHERE a.y = b.x")
        assert db.peak_memory_bytes > 0

    def test_eost_commit_flushes(self):
        database = Database(eost=True, enforce_budgets=False)
        database.execute("CREATE TABLE t (a INT)")
        database.execute("INSERT INTO t VALUES (1)")
        assert database.storage.pending_bytes > 0
        database.commit()
        assert database.storage.pending_bytes == 0

    def test_non_eost_flushes_eagerly(self):
        database = Database(eost=False, enforce_budgets=False)
        database.execute("CREATE TABLE t (a INT)")
        database.execute("INSERT INTO t VALUES (1)")
        assert database.storage.pending_bytes == 0
        assert database.storage.flushed_bytes > 0

"""Tests for the analysis toolkit: harness, capabilities, CPU efficiency."""

import numpy as np
import pytest

from repro.analysis.capabilities import ENGINES, capability_matrix, format_capability_table
from repro.analysis.cpu_efficiency import cpu_efficiency, format_efficiency
from repro.analysis.harness import (
    ENGINE_FACTORIES,
    format_comparison_table,
    format_status,
    make_engine,
    pick_sources,
    prepare_edb,
    run_workload,
)
from repro.common.records import EvaluationResult
from repro.programs import get_program


class TestHarness:
    def test_make_engine_known_names(self):
        for name in ENGINE_FACTORIES:
            engine = make_engine(name, enforce_budgets=False)
            assert hasattr(engine, "evaluate")

    def test_make_engine_unknown(self):
        with pytest.raises(KeyError):
            make_engine("DataScript")

    def test_prepare_edb_adds_source_for_reach(self):
        edb = prepare_edb(get_program("REACH"), "G500")
        assert "id" in edb
        assert edb["id"].shape == (1, 1)

    def test_prepare_edb_explicit_source(self):
        edb = prepare_edb(get_program("REACH"), "G500", source=7)
        assert edb["id"].tolist() == [[7]]

    def test_prepare_edb_weights_for_sssp(self):
        edb = prepare_edb(get_program("SSSP"), "G500")
        assert edb["arc"].shape[1] == 3
        assert (edb["arc"][:, 2] >= 1).all()

    def test_prepare_edb_leaves_tc_alone(self):
        edb = prepare_edb(get_program("TC"), "G500")
        assert set(edb) == {"arc"}

    def test_pick_sources_only_vertices_with_out_edges(self):
        edges = np.array([[5, 6], [7, 8]])
        sources = pick_sources(edges, count=2, seed=0)
        assert set(sources[:, 0].tolist()) <= {5, 7}

    def test_run_workload_end_to_end(self):
        result = run_workload("RecStep", "TC", "G500", enforce_budgets=False)
        assert result.status == "ok"
        assert result.engine == "RecStep"
        assert result.dataset == "G500"
        assert len(result.tuples["tc"]) > 0

    def test_run_workload_seed_changes_data(self):
        a = run_workload("RecStep", "TC", "G500", seed=1, enforce_budgets=False)
        b = run_workload("RecStep", "TC", "G500", seed=2, enforce_budgets=False)
        assert a.sizes() != b.sizes()

    def test_format_status(self):
        ok = EvaluationResult("E", "P", "D", sim_seconds=2.0)
        assert format_status(ok) == "2.0s"
        oom = EvaluationResult("E", "P", "D", status="oom")
        assert format_status(oom) == "Out of Memory"

    def test_format_comparison_table(self):
        result = EvaluationResult("RecStep", "TC", "G500", sim_seconds=1.5)
        text = format_comparison_table("t", [("G500", {"RecStep": result})], ["RecStep"])
        assert "G500" in text and "1.5s" in text


class TestCapabilities:
    def test_matrix_matches_paper_table1(self):
        matrix = capability_matrix()
        assert matrix["Mutual Recursion"] == {
            "RecStep": "yes", "Souffle": "yes", "BigDatalog": "no",
            "Graspan": "yes", "bddbddb": "yes",
        }
        assert matrix["Recursive Aggregation"]["RecStep"] == "yes"
        assert matrix["Recursive Aggregation"]["Souffle"] == "no"

    def test_format_includes_all_engines(self):
        text = format_capability_table(capability_matrix())
        for engine in ENGINES:
            assert engine in text


class TestCpuEfficiency:
    def test_formula(self):
        result = EvaluationResult("RecStep", "TC", "G1K", sim_seconds=5.0)
        assert cpu_efficiency(result) == pytest.approx(1.0 / (5.0 * 20))
        assert cpu_efficiency(result, cores=10) == pytest.approx(1.0 / 50.0)

    def test_failed_run_has_no_efficiency(self):
        result = EvaluationResult("RecStep", "TC", "G1K", status="oom")
        assert cpu_efficiency(result) is None

    def test_single_threaded_bddbddb(self):
        result = EvaluationResult("bddbddb", "TC", "G1K", sim_seconds=100.0)
        assert cpu_efficiency(result) == pytest.approx(0.01)

    def test_format(self):
        assert format_efficiency(None) == "-"
        assert format_efficiency(1.23e-4) == "1.23e-04"

"""RecStep failure reporting: OOM, timeout, and budget boundaries."""

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program


class TestFailureStatuses:
    def test_oom_reported_not_raised(self):
        dense = np.array(
            [[i, j] for i in range(60) for j in range(60) if i != j], dtype=np.int64
        )
        config = RecStepConfig(memory_budget=50_000, pbme=PbmeMode.OFF)
        result = RecStep(config).evaluate(get_program("TC"), {"arc": dense}, "t")
        assert result.status == "oom"
        assert result.tuples == {}            # no partial fixpoint exposed
        assert result.peak_memory_bytes > 0   # partial telemetry kept
        assert result.memory_trace is not None

    def test_timeout_reported_not_raised(self):
        chain = np.array([[i, i + 1] for i in range(400)], dtype=np.int64)
        config = RecStepConfig(time_budget=0.05, pbme=PbmeMode.OFF)
        result = RecStep(config).evaluate(get_program("TC"), {"arc": chain}, "t")
        assert result.status == "timeout"
        assert result.sim_seconds >= 0.05

    def test_generous_budgets_succeed(self):
        edges = np.array([[0, 1], [1, 2]], dtype=np.int64)
        result = RecStep(RecStepConfig()).evaluate(get_program("TC"), {"arc": edges}, "t")
        assert result.status == "ok"

    def test_missing_edb_raises_datalog_error(self):
        from repro.common.errors import DatalogError

        with pytest.raises(DatalogError):
            RecStep(RecStepConfig()).evaluate(get_program("TC"), {}, "t")

    def test_pbme_respects_memory_budget(self):
        """PBME's fit check refuses the matrix when it cannot fit, and the
        relational fallback then OOMs — no silent overshoot."""
        dense = np.array(
            [[i, j] for i in range(120) for j in range(120) if i != j], dtype=np.int64
        )
        config = RecStepConfig(memory_budget=8_000, pbme=PbmeMode.AUTO)
        result = RecStep(config).evaluate(get_program("TC"), {"arc": dense}, "t")
        assert result.status == "oom"


class TestConfigSurface:
    def test_without_unknown_optimization(self):
        with pytest.raises(ValueError):
            RecStepConfig().without("turbo")

    def test_without_is_pure(self):
        base = RecStepConfig()
        ablated = base.without("uie")
        assert base.uie and not ablated.uie

    def test_no_op_disables_everything(self):
        config = RecStepConfig.no_op()
        assert not config.uie and not config.dsd and not config.eost
        assert not config.fast_dedup
        assert config.oof.value == "na"
        assert config.pbme.value == "off"

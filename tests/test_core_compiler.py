"""Tests for the Datalog-to-SQL query generator."""

from repro.core.compiler import (
    QueryGenerator,
    columns_for,
    delta_table,
    mdelta_table,
    render_iie_sql,
    render_uie_sql,
)
from repro.programs import get_program
from repro.sql import ast as sast


def compile_program(name: str):
    analyzed = get_program(name).parse()
    return QueryGenerator(analyzed).compile()


class TestNaming:
    def test_columns_for(self):
        assert columns_for(3) == ("c0", "c1", "c2")

    def test_table_names(self):
        assert delta_table("tc") == "tc_delta"
        assert mdelta_table("tc") == "tc_mdelta"


class TestTcCompilation:
    def test_init_query_unions_both_rules(self):
        strata = compile_program("TC")
        (predicate,) = strata[0].predicates
        assert predicate.predicate == "tc"
        assert len(predicate.init_subqueries) == 2

    def test_delta_query_substitutes_delta_table(self):
        strata = compile_program("TC")
        (predicate,) = strata[0].predicates
        assert len(predicate.delta_subqueries) == 1
        tables = {ref.table for ref in predicate.delta_subqueries[0].tables}
        assert "tc_delta" in tables
        assert "arc" in tables

    def test_join_predicate_generated(self):
        strata = compile_program("TC")
        (predicate,) = strata[0].predicates
        select = predicate.delta_subqueries[0]
        assert any(
            isinstance(p, sast.Comparison) and p.op == "=" for p in select.where
        )


class TestNonlinearCompilation:
    def test_andersen_delta_count(self):
        """AA: 1 linear + 2+2 from the two-pointsTo rules = 6 delta arms
        (plus the assign rule's single pointsTo atom)."""
        strata = compile_program("AA")
        (points_to,) = [
            p for s in strata for p in s.predicates if p.predicate == "pointsTo"
        ]
        # rules: assign(1 idb atom) + load(2 idb atoms) + store(2 idb atoms)
        assert len(points_to.delta_subqueries) == 5

    def test_cspa_mutual_recursion_deltas(self):
        strata = compile_program("CSPA")
        recursive = [s for s in strata if s.stratum.recursive]
        assert len(recursive) == 1
        predicate_names = {p.predicate for p in recursive[0].predicates}
        assert predicate_names == {"valueFlow", "memoryAlias", "valueAlias"}


class TestAggregationCompilation:
    def test_cc_group_by_emitted(self):
        strata = compile_program("CC")
        cc3 = next(p for s in strata for p in s.predicates if p.predicate == "cc3")
        select = cc3.init_subqueries[0]
        assert select.group_by
        assert isinstance(select.items[-1].expr, sast.AggregateCall)

    def test_sssp_arithmetic_in_aggregate(self):
        strata = compile_program("SSSP")
        sssp2 = next(p for s in strata for p in s.predicates if p.predicate == "sssp2")
        recursive_arm = sssp2.delta_subqueries[0]
        agg = recursive_arm.items[-1].expr
        assert isinstance(agg.argument, sast.BinaryOp)
        assert agg.argument.op == "+"


class TestNegationCompilation:
    def test_ntc_not_exists(self):
        strata = compile_program("NTC")
        ntc = next(p for s in strata for p in s.predicates if p.predicate == "ntc")
        select = ntc.init_subqueries[0]
        assert any(isinstance(p, sast.NotExists) for p in select.where)

    def test_comparison_translated(self):
        strata = compile_program("SG")
        sg = next(p for s in strata for p in s.predicates if p.predicate == "sg")
        base = sg.init_subqueries[0]
        assert any(
            isinstance(p, sast.Comparison) and p.op == "<>" for p in base.where
        )


class TestSqlRendering:
    def test_uie_renders_single_statement(self):
        """Figure 4, right side: one INSERT with UNION ALL arms."""
        strata = compile_program("AA")
        points_to = next(
            p for s in strata for p in s.predicates if p.predicate == "pointsTo"
        )
        sql = render_uie_sql(points_to)
        assert sql.count("INSERT INTO pointsTo_mdelta") == 1
        assert sql.count("UNION ALL") == len(points_to.delta_subqueries) - 1

    def test_iie_renders_per_subquery_inserts(self):
        """Figure 4, left side: one INSERT per subquery plus a merge."""
        strata = compile_program("AA")
        points_to = next(
            p for s in strata for p in s.predicates if p.predicate == "pointsTo"
        )
        sql = render_iie_sql(points_to)
        arms = len(points_to.delta_subqueries)
        assert sql.count("INSERT INTO pointsTo_tmp_mdelta") == arms
        assert sql.count("INSERT INTO pointsTo_mdelta") == 1

    def test_rendered_sql_reparses(self):
        from repro.sql.parser import parse_script

        strata = compile_program("TC")
        (tc,) = strata[0].predicates
        script = parse_script(render_uie_sql(tc))
        assert len(script.statements) == 1

"""Magic sets / demand-driven point queries.

The correctness bar, everywhere: the answers of a magic-rewritten
evaluation are **tuple-identical** to post-filtering a full
materialization of the original program by the same goal pattern — under
every execution variant (join cache and partitioned execution on/off,
chaos fault injection armed), for every edge-case goal shape (repeated
variables, wildcards, all-free), and with negation or aggregation in the
demanded cone (where restriction must be refused, never silently wrong).
"""

import numpy as np
import pytest

from repro.common.errors import DatalogError
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.datalog import ast
from repro.datalog.analyzer import (
    adorn_program,
    analyze_program,
    goal_adornment,
)
from repro.datalog.magic import (
    adorned_name,
    answer_identity,
    filter_answers,
    magic_name,
    magic_rewrite,
    matches_goal,
)
from repro.datalog.parser import parse_goal, parse_program
from repro.programs import get_program

RELATIONAL = dict(pbme=PbmeMode.OFF)


def _edges(seed: int, nodes: int, rows: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    out = np.unique(rng.integers(0, nodes, size=(rows, 2)), axis=0)
    return out[out[:, 0] != out[:, 1]].astype(np.int64)


def _answer(program, goal_text: str, edb, **config):
    engine = RecStep(RecStepConfig(**{**RELATIONAL, **config}))
    result = engine.answer(
        program, goal_text, {name: rows.copy() for name, rows in edb.items()}
    )
    assert result.status == "ok", result.failure
    return result


def _full(program, edb, **config):
    engine = RecStep(RecStepConfig(**{**RELATIONAL, **config}))
    result = engine.evaluate(
        program, {name: rows.copy() for name, rows in edb.items()}
    )
    assert result.status == "ok", result.failure
    return result


def _assert_identity(program, goal_text: str, edb, **config) -> dict:
    """The bar itself; returns the answer result's detail for extra checks."""
    goal = parse_goal(goal_text)
    answered = _answer(program, goal_text, edb, **config)
    full = _full(program, edb, **config)
    expected = filter_answers(full.tuples[goal.predicate], goal)
    assert answered.tuples[goal.predicate] == expected
    return answered.detail


# ---------------------------------------------------------------------------
# Goal parsing
# ---------------------------------------------------------------------------


class TestParseGoal:
    def test_bare_and_query_forms(self):
        for text in ("tc(5, x)", "?- tc(5, x).", "tc(5, x).", "?- tc(5, x)"):
            goal = parse_goal(text)
            assert goal.predicate == "tc"
            assert goal.terms[0] == ast.Constant(5)
            assert isinstance(goal.terms[1], ast.Variable)

    def test_wildcard_goal(self):
        goal = parse_goal("tc(5, _)")
        assert isinstance(goal.terms[1], ast.Wildcard)

    def test_negated_goal_rejected(self):
        with pytest.raises(DatalogError):
            parse_goal("!tc(5, x)")
        with pytest.raises(DatalogError):
            parse_goal("not tc(5, x)")

    def test_trailing_junk_rejected(self):
        with pytest.raises(DatalogError):
            parse_goal("tc(5, x). tc(6, y)")

    def test_program_level_queries(self):
        program = parse_program(
            "tc(x, y) :- arc(x, y).\n"
            "tc(x, y) :- tc(x, z), arc(z, y).\n"
            "?- tc(5, x).\n"
            "?- tc(_, 3).\n"
        )
        assert [q.predicate for q in program.queries] == ["tc", "tc"]
        # Round-trips through the pretty-printer.
        assert "?- tc(5, x)." in str(program)
        analyze_program(program)  # goals validated, no error

    def test_unknown_goal_predicate_rejected_by_analyzer(self):
        program = parse_program("tc(x, y) :- arc(x, y).\n?- nosuch(5).\n")
        with pytest.raises(DatalogError, match="nosuch"):
            analyze_program(program)

    def test_goal_arity_mismatch_rejected(self):
        program = parse_program("tc(x, y) :- arc(x, y).\n?- tc(5).\n")
        with pytest.raises(DatalogError, match="arity"):
            analyze_program(program)


# ---------------------------------------------------------------------------
# Adornment analysis
# ---------------------------------------------------------------------------


TC_SOURCE = """
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
"""


class TestAdornment:
    def test_goal_adornment(self):
        assert goal_adornment(parse_goal("p(5, x, _, 3)")) == "bffb"

    def test_tc_bound_source(self):
        analyzed = analyze_program(parse_program(TC_SOURCE))
        analysis = adorn_program(analyzed, parse_goal("tc(5, x)"))
        assert analysis.degenerate is None
        assert set(analysis.adorned) == {("tc", "bf")}
        assert analysis.full == set()

    def test_all_free_goal_degenerates(self):
        analyzed = analyze_program(parse_program(TC_SOURCE))
        analysis = adorn_program(analyzed, parse_goal("tc(x, y)"))
        assert analysis.degenerate == "all-free"

    def test_edb_goal_degenerates(self):
        analyzed = analyze_program(parse_program(TC_SOURCE))
        analysis = adorn_program(analyzed, parse_goal("arc(5, x)"))
        assert analysis.degenerate == "edb-goal"

    def test_repeated_free_variables_are_free(self):
        # tc(x, x) binds nothing: the repetition is a filter, not a binding.
        analyzed = analyze_program(parse_program(TC_SOURCE))
        analysis = adorn_program(analyzed, parse_goal("tc(x, x)"))
        assert analysis.degenerate == "all-free"

    def test_sips_propagates_left_to_right(self):
        # After arc(a, x) both a and x are bound, so sg is demanded 'bf'
        # through its own recursion.
        analyzed = analyze_program(parse_program(get_program("SG").source))
        analysis = adorn_program(analyzed, parse_goal("sg(5, y)"))
        assert analysis.degenerate is None
        assert ("sg", "bf") in analysis.adorned

    def test_negated_cone_predicate_pinned(self):
        analyzed = analyze_program(parse_program(get_program("NTC").source))
        analysis = adorn_program(analyzed, parse_goal("ntc(5, y)"))
        assert analysis.degenerate is None
        assert analysis.pinned.get("tc") == "negation"
        assert "tc" in analysis.full

    def test_aggregation_head_pinned(self):
        analyzed = analyze_program(
            parse_program("d(x, MIN(y)) :- arc(x, y).")
        )
        analysis = adorn_program(analyzed, parse_goal("d(5, m)"))
        assert analysis.degenerate == "pinned-aggregation"


# ---------------------------------------------------------------------------
# The rewrite itself
# ---------------------------------------------------------------------------


class TestRewrite:
    def test_tc_shape(self):
        rewrite = magic_rewrite(
            analyze_program(parse_program(TC_SOURCE)), parse_goal("tc(5, x)")
        )
        assert rewrite.rewritten
        assert rewrite.answer_predicate == adorned_name("tc", "bf")
        assert rewrite.magic_predicates == (magic_name("tc", "bf"),)
        text = str(rewrite.program)
        assert "m_tc_bf(5)." in text
        assert "tc_bf(x, y) :- m_tc_bf(x), arc(x, y)." in text
        assert "tc_bf(x, y) :- m_tc_bf(x), tc_bf(x, z), arc(z, y)." in text
        # The left-linear recursion's self-feeding guard is a tautology
        # and must not be emitted.
        assert "m_tc_bf(x) :- m_tc_bf(x)." not in text

    def test_degenerate_returns_original_program(self):
        analyzed = analyze_program(parse_program(TC_SOURCE))
        rewrite = magic_rewrite(analyzed, parse_goal("tc(x, y)"))
        assert not rewrite.rewritten
        assert rewrite.program is analyzed.program
        assert rewrite.answer_predicate == "tc"
        assert rewrite.cone_fraction(analyzed) == 1.0

    def test_cone_fraction_prices_bound_goals_cheaper(self):
        analyzed = analyze_program(parse_program(TC_SOURCE))
        bound = magic_rewrite(analyzed, parse_goal("tc(5, x)"))
        assert 0.0 < bound.cone_fraction(analyzed) < 1.0

    def test_name_collision_rejected(self):
        source = TC_SOURCE + "m_tc_bf(x) :- arc(x, x).\n"
        analyzed = analyze_program(parse_program(source))
        with pytest.raises(DatalogError, match="collision"):
            magic_rewrite(analyzed, parse_goal("tc(5, x)"))

    def test_pinned_predicates_keep_original_rules(self):
        analyzed = analyze_program(parse_program(get_program("NTC").source))
        rewrite = magic_rewrite(analyzed, parse_goal("ntc(5, y)"))
        assert rewrite.rewritten
        text = str(rewrite.program)
        # tc is read under negation: original name, original rules, and
        # no magic predicate may restrict it.
        assert "tc(x, y) :- arc(x, y)." in text
        assert magic_name("tc", "bf") not in text
        assert rewrite.pinned == {"tc": "negation"}


class TestMatchesGoal:
    def test_constants_and_repeats(self):
        goal = parse_goal("p(5, x, x)")
        assert matches_goal((5, 2, 2), goal)
        assert not matches_goal((5, 2, 3), goal)
        assert not matches_goal((4, 2, 2), goal)

    def test_wildcards_are_independent(self):
        goal = parse_goal("p(_, _)")
        assert matches_goal((1, 2), goal)
        assert matches_goal((2, 2), goal)

    def test_answer_identity_helper(self):
        goal = parse_goal("p(1, x)")
        # Rows failing the goal filter are ignored on both sides ...
        assert answer_identity([(1, 2), (2, 3)], [(1, 2), (3, 9)], goal) is True
        # ... but a matching row present on only one side breaks identity.
        assert answer_identity([(1, 2)], [(1, 2), (1, 3)], goal) is False


# ---------------------------------------------------------------------------
# End-to-end identity: rewritten answers == post-filtered full fixpoint
# ---------------------------------------------------------------------------


def _aa_edb(seed: int, nodes: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)

    def rel(rows):
        out = np.unique(rng.integers(0, nodes, size=(rows, 2)), axis=0)
        return out.astype(np.int64)

    return {
        "addressOf": rel(18),
        "assign": rel(14),
        "load": rel(10),
        "store": rel(10),
    }


def _cspa_edb(seed: int, nodes: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)

    def rel(rows):
        out = np.unique(rng.integers(0, nodes, size=(rows, 2)), axis=0)
        return out.astype(np.int64)

    return {"assign": rel(20), "dereference": rel(14)}


class TestIdentityMatrix:
    def test_tc_bound_source(self):
        edb = {"arc": _edges(7, 40, 140)}
        constant = int(edb["arc"][0, 0])
        detail = _assert_identity(get_program("TC"), f"tc({constant}, x)", edb)
        assert detail["magic_rewritten"] == 1.0

    def test_tc_bound_target(self):
        # 'fb' adornment: the recursion tc(x,y) :- tc(x,z), arc(z,y) is
        # left-linear, so binding y demands an all-free tc and the cone
        # closes over the full relation — still answer-identical.
        edb = {"arc": _edges(7, 40, 140)}
        constant = int(edb["arc"][0, 1])
        _assert_identity(get_program("TC"), f"tc(x, {constant})", edb)

    def test_tc_fully_bound(self):
        edb = {"arc": _edges(9, 30, 90)}
        a, b = int(edb["arc"][0, 0]), int(edb["arc"][0, 1])
        answered = _answer(get_program("TC"), f"tc({a}, {b})", edb)
        assert answered.tuples["tc"] == {(a, b)}

    def test_sg_bound_left(self):
        edb = {"arc": _edges(11, 24, 80)}
        full = _full(get_program("SG"), edb)
        if not full.tuples["sg"]:
            pytest.skip("seeded graph produced an empty sg relation")
        constant = sorted(full.tuples["sg"])[0][0]
        _assert_identity(get_program("SG"), f"sg({constant}, y)", edb)

    def test_andersen_bound_variable(self):
        edb = _aa_edb(13, 16)
        constant = int(edb["addressOf"][0, 0])
        _assert_identity(get_program("AA"), f"pointsTo({constant}, x)", edb)

    def test_cspa_bound_value_flow(self):
        edb = _cspa_edb(17, 14)
        constant = int(edb["assign"][0, 0])
        _assert_identity(get_program("CSPA"), f"valueFlow({constant}, y)", edb)

    def test_ntc_negation_in_cone(self):
        # tc is read under NOT EXISTS inside the demanded cone: it must
        # be evaluated complete (pinned), and the answers still match.
        edb = {"arc": _edges(19, 12, 30)}
        constant = int(edb["arc"][0, 0])
        _assert_identity(get_program("NTC"), f"ntc({constant}, y)", edb)

    @pytest.mark.parametrize(
        "variant",
        [
            dict(join_cache=False),
            dict(partitioned_exec=False),
            dict(join_cache=False, partitioned_exec=False),
            dict(fault_seed=20260808),  # chaos: injected transient faults
        ],
        ids=["no-join-cache", "no-partitioned", "neither", "chaos"],
    )
    def test_tc_identity_under_execution_variants(self, variant):
        edb = {"arc": _edges(23, 36, 120)}
        constant = int(edb["arc"][0, 0])
        _assert_identity(get_program("TC"), f"tc({constant}, x)", edb, **variant)


class TestEdgeCaseGoals:
    def test_all_free_goal_degenerates_to_full(self):
        edb = {"arc": _edges(3, 20, 50)}
        answered = _answer(get_program("TC"), "tc(x, y)", edb)
        full = _full(get_program("TC"), edb)
        assert answered.tuples["tc"] == set(map(tuple, full.tuples["tc"]))
        assert answered.detail["magic_rewritten"] == 0.0

    def test_repeated_free_variable_filters_diagonal(self):
        edb = {"arc": _edges(3, 20, 60)}
        answered = _answer(get_program("TC"), "tc(x, x)", edb)
        full = _full(get_program("TC"), edb)
        assert answered.tuples["tc"] == {
            (a, b) for a, b in full.tuples["tc"] if a == b
        }

    def test_repeated_variable_with_bound_position(self):
        source = "t3(x, y, z) :- arc(x, y), arc(y, z).\n"
        edb = {"arc": _edges(5, 15, 60)}
        constant = int(edb["arc"][0, 0])
        _assert_identity(source, f"t3({constant}, w, w)", edb)

    def test_wildcard_equals_fresh_variable(self):
        edb = {"arc": _edges(7, 25, 80)}
        constant = int(edb["arc"][0, 0])
        by_wildcard = _answer(get_program("TC"), f"tc({constant}, _)", edb)
        by_variable = _answer(get_program("TC"), f"tc({constant}, x)", edb)
        assert by_wildcard.tuples["tc"] == by_variable.tuples["tc"]

    def test_edb_goal_answers_without_evaluation(self):
        edb = {"arc": np.array([[1, 2], [1, 3], [2, 4]], dtype=np.int64)}
        answered = _answer(get_program("TC"), "arc(1, x)", edb)
        assert answered.tuples["arc"] == {(1, 2), (1, 3)}
        assert answered.iterations == 0

    def test_constants_already_in_rule_bodies(self):
        source = (
            "p(x, y) :- arc(x, y), arc(y, 3).\n"
            "p(x, y) :- p(x, z), arc(z, y).\n"
        )
        edb = {"arc": _edges(29, 8, 40)}
        constant = int(edb["arc"][0, 0])
        _assert_identity(source, f"p({constant}, y)", edb)

    def test_goal_on_aggregation_head_refuses_restriction(self):
        source = "d(x, MIN(y)) :- arc(x, y).\n"
        edb = {"arc": _edges(31, 10, 30)}
        constant = int(edb["arc"][0, 0])
        detail = _assert_identity(source, f"d({constant}, m)", edb)
        # Never silently wrong: the rewrite refused (degenerate), the
        # full program ran, the filter did the rest.
        assert detail["magic_rewritten"] == 0.0

    def test_aggregation_below_demanded_cone_pinned(self):
        source = (
            "d(x, MIN(y)) :- arc(x, y).\n"
            "q(x, y) :- arc(x, y).\n"
            "q(x, y) :- q(x, z), d(z, y).\n"
        )
        edb = {"arc": _edges(37, 10, 30)}
        constant = int(edb["arc"][0, 0])
        analyzed = analyze_program(parse_program(source))
        rewrite = magic_rewrite(analyzed, parse_goal(f"q({constant}, y)"))
        assert rewrite.rewritten
        assert rewrite.pinned == {"d": "aggregation"}
        _assert_identity(source, f"q({constant}, y)", edb)

    def test_magic_counters_increment(self):
        edb = {"arc": _edges(3, 20, 50)}
        constant = int(edb["arc"][0, 0])
        engine = RecStep(RecStepConfig(profile=True, **RELATIONAL))
        engine.answer(get_program("TC"), f"tc({constant}, x)", dict(edb))
        counters = engine.last_database.profiler.counters
        assert counters.get("magic.rewrites") == 1
        engine.answer(get_program("TC"), "tc(x, y)", dict(edb))
        assert engine.last_database.profiler.counters.get("magic.degenerate") == 1

"""Incremental view maintenance: EDB churn served from a warm fixpoint.

The acceptance bar is *fixpoint identity*: after any sequence of insert/
delete batches, a maintained view's IDB contents are bit-identical to
recomputing from scratch on the post-churn EDB — across programs that
exercise every maintenance class (counting for non-recursive strata,
DRed for recursive monotone ones, recompute for negation/aggregates),
with the spill tier on, under chaos, and after a checkpoint resume.

The satellite staleness fixes ride along:

* the join-state cache detects same-size in-place rewrites that keep
  the epoch (the ``synced_version`` backstop);
* cancelling a still-queued priced session releases its pending
  admission reservation immediately;
* checkpoint resume refuses snapshots whose EDB fingerprint no longer
  matches the inputs (``checkpoint_stale_skipped``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.engine.database import Database
from repro.obs.counters import CounterRegistry
from repro.programs import get_program
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointManager,
    CheckpointState,
    StaleCheckpointError,
    edb_fingerprint,
)
from repro.server.admission import QueryRequest
from repro.server.service import QueryService, ServerConfig

RELATIONAL = dict(pbme=PbmeMode.OFF)


def path_arcs(n: int) -> np.ndarray:
    """A directed path: the TC closure is sparse, so deltas stay small
    and a vacuously-complete fixpoint cannot mask a maintenance bug."""
    src = np.arange(n - 1, dtype=np.int64)
    return np.stack([src, src + 1], axis=1)


def random_graph(seed: int, nodes: int, edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.unique(
        rng.integers(0, nodes, size=(edges, 2)).astype(np.int64), axis=0
    )


def aa_edb(seed: int = 3) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)

    def rel(count):
        return np.unique(rng.integers(0, 25, size=(count, 2)), axis=0).astype(
            np.int64
        )

    return {
        "addressOf": rel(18),
        "assign": rel(16),
        "load": rel(12),
        "store": rel(12),
    }


def churn_batches(
    edb: dict[str, np.ndarray], seed: int, count: int, batch: int = 4
):
    """Random insert/delete batches over the live EDB state.

    Yields (inserts, deletes, edb_after): deletions sample existing
    rows, insertions draw fresh rows from the same value range, and the
    returned ``edb_after`` is the ground truth a recompute should see.
    """
    rng = np.random.default_rng(seed)
    state = {name: {tuple(map(int, r)) for r in rows} for name, rows in edb.items()}
    arities = {name: rows.shape[1] for name, rows in edb.items()}
    high = max(
        (int(rows.max()) + 1 for rows in edb.values() if rows.size), default=8
    )
    for _ in range(count):
        inserts: dict[str, np.ndarray] = {}
        deletes: dict[str, np.ndarray] = {}
        for name in sorted(state):
            arity = arities[name]
            dels = []
            existing = sorted(state[name])
            if existing and rng.random() < 0.8:
                k = int(rng.integers(1, min(batch, len(existing)) + 1))
                idx = rng.choice(len(existing), size=k, replace=False)
                dels = [existing[i] for i in idx]
            ins = [
                tuple(int(v) for v in rng.integers(0, high, size=arity))
                for _ in range(int(rng.integers(1, batch + 1)))
            ]
            if dels:
                deletes[name] = np.array(dels, dtype=np.int64)
                state[name] -= set(dels)
            if ins:
                inserts[name] = np.array(ins, dtype=np.int64)
                state[name] |= set(ins)
        edb_after = {
            name: np.array(sorted(rows), dtype=np.int64).reshape(
                -1, arities[name]
            )
            for name, rows in state.items()
        }
        yield inserts, deletes, edb_after


def recompute_fixpoint(spec, edb_data) -> dict[str, set]:
    result = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
        spec, edb_data, dataset="ref"
    )
    assert result.status == "ok"
    return {
        name: {tuple(int(v) for v in row) for row in rows}
        for name, rows in result.tuples.items()
    }


PROGRAM_EDBS = [
    ("TC", lambda: {"arc": path_arcs(40)}),
    ("SG", lambda: {"arc": random_graph(5, 30, 70)}),
    ("AA", aa_edb),
]


class TestMaintainedIdentity:
    """maintain() == recompute-from-scratch, bit for bit."""

    @pytest.mark.parametrize("program,make_edb", PROGRAM_EDBS)
    def test_randomized_churn_matches_recompute(self, program, make_edb):
        spec = get_program(program)
        edb = make_edb()
        view = RecStep(RecStepConfig(**RELATIONAL)).materialize(
            spec, edb, dataset="churn"
        )
        try:
            for inserts, deletes, edb_after in churn_batches(
                edb, seed=1720, count=4
            ):
                result = view.maintain(inserts, deletes)
                assert result.status == "ok", result.failure
                assert view.fixpoint() == recompute_fixpoint(spec, edb_after)
        finally:
            view.release()

    def test_negation_and_aggregates_recompute_classes(self):
        """NTC (negation) and SSSP (MIN) force the recompute/counting
        classes; CC has a counting-maintainable non-recursive stratum."""
        cases = [
            ("NTC", {"arc": random_graph(7, 12, 26)}),
            ("CC", {"arc": random_graph(9, 16, 30)}),
        ]
        for name, edb in cases:
            spec = get_program(name)
            view = RecStep(RecStepConfig(**RELATIONAL)).materialize(
                spec, edb, dataset="churn"
            )
            try:
                for inserts, deletes, edb_after in churn_batches(
                    edb, seed=42, count=3, batch=3
                ):
                    result = view.maintain(inserts, deletes)
                    assert result.status == "ok", result.failure
                    assert view.fixpoint() == recompute_fixpoint(spec, edb_after)
            finally:
                view.release()

    def test_insert_only_batch_reports_net_deltas(self):
        spec = get_program("TC")
        edb = {"arc": path_arcs(30)}
        view = RecStep(RecStepConfig(**RELATIONAL)).materialize(
            spec, edb, dataset="delta"
        )
        try:
            before = {name: len(rows) for name, rows in view.fixpoint().items()}
            result = view.maintain(
                {"arc": np.array([[29, 30]], dtype=np.int64)}, None
            )
            assert result.status == "ok"
            assert result.applied["arc"]["inserted"] == 1
            assert result.applied["arc"]["deleted"] == 0
            # Appending the next path edge derives exactly the new
            # suffix-reaching pairs: 30 (one per earlier node).
            assert result.idb_deltas["tc"]["inserted"] == 30
            assert result.idb_deltas["tc"]["deleted"] == 0
            after = view.fixpoint()
            assert len(after["tc"]) == before["tc"] + 30
        finally:
            view.release()

    def test_duplicate_and_noop_batches(self):
        """Inserting present rows / deleting absent rows is a no-op, and
        insert+delete of the same absent tuple nets to an insert."""
        spec = get_program("TC")
        edb = {"arc": path_arcs(10)}
        view = RecStep(RecStepConfig(**RELATIONAL)).materialize(
            spec, edb, dataset="noop"
        )
        try:
            base = view.fixpoint()
            result = view.maintain(
                {"arc": np.array([[0, 1]], dtype=np.int64)},  # already present
                {"arc": np.array([[90, 91]], dtype=np.int64)},  # absent
            )
            assert result.status == "ok"
            assert result.delta_rows == 0
            assert view.fixpoint() == base
        finally:
            view.release()

    def test_bad_relation_faults_without_poisoning(self):
        spec = get_program("TC")
        view = RecStep(RecStepConfig(**RELATIONAL)).materialize(
            spec, {"arc": path_arcs(6)}, dataset="bad"
        )
        try:
            result = view.maintain(
                {"nonsense": np.array([[1, 2]], dtype=np.int64)}, None
            )
            assert result.status == "fault"
            assert view.status == "ready"  # validation precedes mutation
            ok = view.maintain({"arc": np.array([[5, 6]], dtype=np.int64)}, None)
            assert ok.status == "ok"
        finally:
            view.release()


class TestMaintainedIdentityUnderStress:
    def test_churn_identity_with_spill_tier(self, tmp_path):
        spec = get_program("TC")
        edb = {"arc": path_arcs(60)}
        config = RecStepConfig(
            **RELATIONAL,
            memory_budget=400_000,
            degradation=True,
            spill_dir=str(tmp_path / "spill"),
        )
        view = RecStep(config).materialize(spec, edb, dataset="spill-churn")
        assert view.status == "ready", view.result.failure
        try:
            for inserts, deletes, edb_after in churn_batches(
                edb, seed=77, count=3
            ):
                result = view.maintain(inserts, deletes)
                assert result.status == "ok", result.failure
                assert view.fixpoint() == recompute_fixpoint(spec, edb_after)
        finally:
            view.release()

    def test_churn_identity_under_chaos(self):
        spec = get_program("SG")
        edb = {"arc": random_graph(13, 24, 60)}
        config = RecStepConfig(**RELATIONAL, fault_seed=1234, fault_rate=0.1)
        view = RecStep(config).materialize(spec, edb, dataset="chaos-churn")
        assert view.status == "ready", view.result.failure
        try:
            for inserts, deletes, edb_after in churn_batches(
                edb, seed=99, count=3
            ):
                result = view.maintain(inserts, deletes)
                assert result.status == "ok", result.failure
                assert view.fixpoint() == recompute_fixpoint(spec, edb_after)
        finally:
            view.release()

    def test_churn_identity_after_checkpoint_resume(self, tmp_path):
        spec = get_program("TC")
        edb = {"arc": path_arcs(30)}
        RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
            )
        ).evaluate(spec, edb, dataset="ckpt")
        view = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
        ).materialize(spec, edb, dataset="ckpt")
        assert view.status == "ready", view.result.failure
        try:
            for inserts, deletes, edb_after in churn_batches(
                edb, seed=5, count=2
            ):
                result = view.maintain(inserts, deletes)
                assert result.status == "ok", result.failure
                assert view.fixpoint() == recompute_fixpoint(spec, edb_after)
        finally:
            view.release()


class TestJoinCacheInPlaceRewrite:
    """Satellite: the cache must catch epoch-preserving rewrites."""

    def test_same_size_in_place_rewrite_is_stale(self):
        db = Database(enforce_budgets=False, profile=True)
        db.load_table(
            "r", ("x", "y"), np.arange(100, dtype=np.int64).reshape(-1, 2)
        )
        ctx = db._context()
        entry, first = db.join_cache.acquire(ctx, "r", ("x",))
        assert first == "miss"
        # Simulate a legacy in-place rewrite: same row count, contents
        # swapped under the cache's feet, epoch NOT bumped (the class of
        # bug the fix closes — every modern path bumps the epoch, the
        # synced_version backstop catches anything that slips through).
        table = db.catalog.get_table("r")
        buffer = table._rows[: table.num_rows]
        buffer[:] = buffer[::-1] + 1
        table.version += 1
        assert table.epoch == entry.epoch
        assert db.join_cache.extension_estimate(db.catalog, "r", ("x",)) == 50
        entry2, event = db.join_cache.acquire(ctx, "r", ("x",))
        assert event == "rebuild"
        assert entry2.synced_version == table.version
        _, third = db.join_cache.acquire(ctx, "r", ("x",))
        assert third == "hit"

    def test_delete_rows_bumps_epoch_and_evicts(self):
        db = Database(enforce_budgets=False, profile=True)
        db.load_table(
            "r", ("x", "y"), np.arange(40, dtype=np.int64).reshape(-1, 2)
        )
        ctx = db._context()
        db.join_cache.acquire(ctx, "r", ("x",))
        epoch_before = db.catalog.get_table("r").epoch
        removed = db.delete_rows("r", np.array([[0, 1], [2, 3]], dtype=np.int64))
        assert len(removed) == 2
        assert db.catalog.get_table("r").epoch == epoch_before + 1
        # The rewrite evicted the index eagerly; the next acquire
        # rebuilds from scratch.
        assert len(db.join_cache) == 0
        _, event = db.join_cache.acquire(ctx, "r", ("x",))
        assert event == "miss"


class TestQueuedCancelReleasesReservation:
    """Satellite: a cancelled queued session must stop pricing memory."""

    def _request(self, quota: int) -> QueryRequest:
        return QueryRequest(
            program=get_program("TC"),
            edb_data={"arc": path_arcs(6)},
            memory_quota=quota,
        )

    def test_submit_cancel_submit_at_watermark(self):
        service = QueryService(
            ServerConfig(
                max_concurrent=1,
                queue_limit=4,
                memory_budget=100_000_000,
                high_watermark=0.5,
            )
        )
        quota = 50_000_000  # exactly the watermark: one session fits
        first = service.submit(self._request(quota))
        assert first["accepted"]
        assert service.admission.pending_bytes == quota
        bounced = service.submit(self._request(quota))
        assert not bounced["accepted"]
        assert bounced["reason"] == "memory-pressure"
        cancelled = service.cancel(first["session_id"])
        assert cancelled["state"] == "shed"
        assert service.admission.pending_bytes == 0
        retry = service.submit(self._request(quota))
        assert retry["accepted"], retry
        service.pump()
        service.flush()
        assert service.status(retry["session_id"])["state"] == "done"
        assert service.admission.reserved_bytes == 0
        assert service.admission.pending_bytes == 0

    def test_pending_moves_to_reserved_on_admit(self):
        service = QueryService(
            ServerConfig(max_concurrent=1, queue_limit=4)
        )
        quota = 8_000_000
        ack = service.submit(self._request(quota))
        assert service.admission.pending_bytes == quota
        service.pump()
        service.flush()
        # Admitted: the quota moved pending -> reserved exactly once,
        # and was fully released at finish.
        assert service.admission.pending_bytes == 0
        assert service.admission.reserved_bytes == 0
        assert service.status(ack["session_id"])["state"] == "done"


class TestCheckpointStaleness:
    """Satellite: snapshots of a mutated EDB must not resume."""

    @staticmethod
    def _state(fingerprint: str, iteration: int) -> CheckpointState:
        return CheckpointState(
            program="TC",
            stratum=0,
            iteration=iteration,
            tables={"full:tc": np.arange(4, dtype=np.int64).reshape(-1, 2)},
            edb_fingerprint=fingerprint,
        )

    def test_fingerprint_is_order_insensitive_content_sensitive(self):
        rows = np.array([[1, 2], [3, 4]], dtype=np.int64)
        shuffled = rows[::-1].copy()
        assert edb_fingerprint({"arc": rows}) == edb_fingerprint(
            {"arc": shuffled}
        )
        changed = np.array([[1, 2], [3, 5]], dtype=np.int64)
        assert edb_fingerprint({"arc": rows}) != edb_fingerprint(
            {"arc": changed}
        )

    def test_load_skips_stale_snapshot(self, tmp_path):
        manager = CheckpointManager(tmp_path, every=1, keep=10)
        manager.save(self._state("aaaa0000", iteration=5))
        manager.save(self._state("bbbb1111", iteration=3))
        counters = CounterRegistry()
        loaded = CheckpointManager.load(
            tmp_path, counters=counters, expected_edb="bbbb1111"
        )
        assert loaded.iteration == 3
        assert counters.get("checkpoint_stale_skipped") == 1

    def test_single_file_stale_raises(self, tmp_path):
        path = CheckpointManager(tmp_path, every=1).save(
            self._state("aaaa0000", iteration=2)
        )
        with pytest.raises(StaleCheckpointError):
            CheckpointManager.load(path, expected_edb="ffff9999")

    def test_resume_after_edb_mutation_refuses_stale_fixpoint(self, tmp_path):
        spec = get_program("TC")
        edb = {"arc": path_arcs(20)}
        RecStep(
            RecStepConfig(
                **RELATIONAL,
                checkpoint_dir=str(tmp_path),
                checkpoint_every=1,
            )
        ).evaluate(spec, edb, dataset="ckpt")
        # Same EDB resumes fine.
        resumed = RecStep(
            RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
        ).evaluate(spec, edb, dataset="ckpt")
        assert resumed.status == "ok"
        # Mutated EDB: every snapshot is stale; resuming must refuse
        # rather than silently serve the pre-mutation fixpoint.
        mutated = {"arc": np.vstack([edb["arc"], [[19, 20]]]).astype(np.int64)}
        with pytest.raises(CheckpointError, match="corrupt or stale"):
            RecStep(
                RecStepConfig(**RELATIONAL, resume_from=str(tmp_path))
            ).evaluate(spec, mutated, dataset="ckpt")


class TestServedUpdates:
    """kind="update" sessions against a materialized service session."""

    def _tc_view(self, service: QueryService, n: int = 40) -> str:
        ack = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={"arc": path_arcs(n)},
                dataset="served",
                materialize=True,
            )
        )
        assert ack["accepted"], ack
        return ack["session_id"]

    def test_update_maintains_and_prices_by_delta(self):
        service = QueryService(ServerConfig(max_concurrent=2, queue_limit=6))
        view_id = self._tc_view(service)
        service.pump()
        service.flush()
        assert view_id in service._views
        ack = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                dataset="served",
                kind="update",
                target_session=view_id,
                inserts={"arc": np.array([[39, 40]], dtype=np.int64)},
            )
        )
        assert ack["accepted"], ack
        service.pump()
        service.flush()
        update = service.sessions.get(ack["session_id"])
        assert update.state.value == "done"
        assert update.result.status == "ok"
        assert update.result.idb_deltas["tc"]["inserted"] == 40
        spec = get_program("TC")
        expected = recompute_fixpoint(
            spec, {"arc": np.vstack([path_arcs(40), [[39, 40]]])}
        )
        assert service._views[view_id].fixpoint() == expected
        snapshot = service.metrics_snapshot()
        assert "update.latency.all" in snapshot["histograms"]
        assert snapshot["counters"]["server.updates_applied"] == 1
        assert snapshot["counters"]["server.views_materialized"] == 1

    def test_update_against_unknown_view_bounces(self):
        service = QueryService(ServerConfig())
        bounced = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session="q-99999",
                inserts={"arc": np.array([[1, 2]], dtype=np.int64)},
            )
        )
        assert not bounced["accepted"]
        assert bounced["reason"] == "no-such-view"
        assert service.counters.get("server.rejected_no_view") == 1

    def test_update_can_target_queued_materialize(self):
        """An update submitted right behind its materialize request runs
        head-of-line after the view is built."""
        service = QueryService(ServerConfig(max_concurrent=2, queue_limit=6))
        view_id = self._tc_view(service, n=20)
        ack = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session=view_id,
                inserts={"arc": np.array([[19, 20]], dtype=np.int64)},
            )
        )
        assert ack["accepted"], ack
        service.pump()
        service.flush()
        update = service.sessions.get(ack["session_id"])
        assert update.result.status == "ok"
        view_session = service.sessions.get(view_id)
        # Head-of-line: maintenance starts only once the view is ready.
        assert update.finished_at >= view_session.finished_at

    def test_release_view_frees_reservation_and_drain_releases_all(self):
        service = QueryService(ServerConfig(max_concurrent=2, queue_limit=6))
        view_id = self._tc_view(service)
        service.pump()
        service.flush()
        assert service.admission.reserved_bytes > 0
        service.release_view(view_id)
        assert service.admission.reserved_bytes == 0
        assert service.counters.get("server.views_released") == 1
        # A released view no longer accepts updates.
        bounced = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session=view_id,
                inserts={"arc": np.array([[1, 2]], dtype=np.int64)},
            )
        )
        assert not bounced["accepted"]
        assert bounced["reason"] == "no-such-view"
        # Drain releases whatever views remain.
        other = self._tc_view(service, n=10)
        service.pump()
        report = service.drain()
        assert report["drained"]
        assert not service._views
        assert service.admission.reserved_bytes == 0

    def test_oversized_delta_bounces_with_backpressure(self):
        service = QueryService(
            ServerConfig(max_concurrent=1, queue_limit=4)
        )
        ack = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={"arc": path_arcs(10)},
                materialize=True,
                memory_quota=2_000_000,
            )
        )
        assert ack["accepted"]
        service.pump()
        service.flush()
        huge = np.zeros((100_000, 2), dtype=np.int64)
        bounced = service.submit(
            QueryRequest(
                program=get_program("TC"),
                edb_data={},
                kind="update",
                target_session=ack["session_id"],
                inserts={"arc": huge},
            )
        )
        assert not bounced["accepted"]
        assert bounced["reason"] == "memory-pressure"
        assert bounced["view_reserved_bytes"] == 2_000_000

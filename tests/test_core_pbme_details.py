"""Deeper PBME tests: cost attribution, chunking, and shape matching."""

import numpy as np
import pytest

from repro import PbmeMode, RecStep, RecStepConfig
from repro.core.bitmatrix import (
    PackedBitMatrix,
    _match_sg_shape,
    _match_tc_shape,
    _zero_coordination_schedule,
)
from repro.datalog.analyzer import analyze_program
from repro.datalog.parser import parse_program
from repro.programs import get_program


def analyzed_stratum(source: str):
    analyzed = analyze_program(parse_program(source))
    return analyzed, analyzed.strata[-1]


class TestShapeMatching:
    def test_csda_is_tc_shaped_with_distinct_base(self):
        analyzed, stratum = analyzed_stratum(
            "null(x,y) :- nullEdge(x,y). null(x,y) :- null(x,w), arc(w,y)."
        )
        decision = _match_tc_shape(analyzed, stratum)
        assert decision is not None
        assert decision.base_relation == "nullEdge"
        assert decision.edge_relation == "arc"

    def test_swapped_rule_order_still_matches(self):
        analyzed, stratum = analyzed_stratum(
            "tc(x,y) :- tc(x,z), arc(z,y). tc(x,y) :- arc(x,y)."
        )
        assert _match_tc_shape(analyzed, stratum) is not None

    def test_reversed_head_not_tc(self):
        analyzed, stratum = analyzed_stratum(
            "r(x,y) :- e(x,y). r(y,x) :- r(x,z), e(z,y)."
        )
        assert _match_tc_shape(analyzed, stratum) is None

    def test_left_recursion_variant_not_matched(self):
        # arc on the left, tc on the right: valid Datalog, different shape.
        analyzed, stratum = analyzed_stratum(
            "r(x,y) :- e(x,y). r(x,y) :- e(x,z), r(z,y)."
        )
        assert _match_tc_shape(analyzed, stratum) is None

    def test_sg_requires_inequality(self):
        analyzed, stratum = analyzed_stratum(
            "sg(x,y) :- arc(p,x), arc(p,y). "
            "sg(x,y) :- arc(a,x), sg(a,b), arc(b,y)."
        )
        assert _match_sg_shape(analyzed, stratum) is None

    def test_sg_canonical_matches(self):
        analyzed, stratum = analyzed_stratum(get_program("SG").source)
        decision = _match_sg_shape(analyzed, stratum)
        assert decision is not None and decision.shape == "SG"

    def test_constants_break_shape(self):
        analyzed, stratum = analyzed_stratum(
            "r(x,y) :- e(x,y). r(x,y) :- r(x,z), e(z, 5), e(z, y)."
        )
        assert _match_tc_shape(analyzed, stratum) is None


class TestZeroCoordinationSchedule:
    def test_makespan_is_max_thread_cost(self):
        makespan, _ = _zero_coordination_schedule(np.array([1.0, 4.0, 2.0]))
        assert makespan == 4.0

    def test_utilization_reflects_skew(self):
        _, balanced = _zero_coordination_schedule(np.array([2.0, 2.0, 2.0]))
        _, skewed = _zero_coordination_schedule(np.array([6.0, 0.0, 0.0]))
        assert balanced == pytest.approx(1.0)
        assert skewed == pytest.approx(1.0 / 3.0)

    def test_empty_costs(self):
        makespan, utilization = _zero_coordination_schedule(np.zeros(0))
        assert makespan == 0.0 and utilization == 1.0


class TestSgChunking:
    def test_high_degree_graph_correct_through_chunks(self):
        """A star of 400 children forces the output-bounded chunker while
        staying brute-force checkable (one generation only)."""
        children = np.arange(1, 401, dtype=np.int64)
        arc = np.column_stack([np.zeros(400, dtype=np.int64), children])
        result = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            get_program("SG"), {"arc": arc}, "star"
        )
        expected = {(int(a), int(b)) for a in children for b in children if a != b}
        assert result.tuples["sg"] == expected

    def test_two_generation_cascade(self):
        # Root -> two children -> each has two children: the grandchildren
        # of different parents are same-generation via the recursive rule.
        arc = np.array(
            [[0, 1], [0, 2], [1, 3], [1, 4], [2, 5], [2, 6]], dtype=np.int64
        )
        result = RecStep(RecStepConfig(enforce_budgets=False, pbme=PbmeMode.ON)).evaluate(
            get_program("SG"), {"arc": arc}, "tree"
        )
        generation_two = {3, 4, 5, 6}
        expected = {(1, 2), (2, 1)} | {
            (a, b) for a in generation_two for b in generation_two if a != b
        }
        assert result.tuples["sg"] == expected


class TestExtraction:
    def test_large_matrix_extraction_roundtrip(self):
        matrix = PackedBitMatrix(300)
        rng = np.random.default_rng(5)
        rows = rng.integers(0, 300, size=5000)
        cols = rng.integers(0, 300, size=5000)
        matrix.set_pairs(rows, cols)
        pairs = matrix.extract_pairs()
        assert {tuple(p) for p in pairs.tolist()} == set(
            zip(rows.tolist(), cols.tolist())
        )
        assert matrix.count() == pairs.shape[0]


class TestPbmeComposesWithSqlStrata:
    def test_gtc_aggregates_over_pbme_materialized_tc(self):
        """A PBME stratum's result must be readable by later SQL strata."""
        from collections import Counter

        dense = np.array(
            [[i, j] for i in range(25) for j in range(25) if i != j],
            dtype=np.int64,
        )
        result = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.AUTO)
        ).evaluate(get_program("GTC"), {"arc": dense}, "t")
        assert result.detail["pbme_strata"] == 1.0
        from tests.conftest import reference_closure

        counts = Counter(a for a, _ in reference_closure(dense))
        assert result.tuples["gtc"] == set(counts.items())

    def test_ntc_negates_pbme_materialized_tc(self):
        dense = np.array(
            [[i, j] for i in range(20) for j in range(20) if (i + j) % 3], dtype=np.int64
        )
        result = RecStep(
            RecStepConfig(enforce_budgets=False, pbme=PbmeMode.AUTO)
        ).evaluate(get_program("NTC"), {"arc": dense}, "t")
        from tests.conftest import reference_closure

        closure = reference_closure(dense)
        nodes = {int(v) for edge in dense for v in edge}
        expected = {(a, b) for a in nodes for b in nodes if (a, b) not in closure}
        assert result.tuples["ntc"] == expected

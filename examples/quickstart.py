"""Quickstart: evaluate transitive closure with RecStep.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import RecStep, RecStepConfig
from repro.programs import get_program


def main() -> None:
    # A small directed graph as an edge list (the `arc` EDB relation).
    arc = np.array(
        [[0, 1], [1, 2], [2, 3], [0, 3], [3, 4], [5, 0]], dtype=np.int64
    )

    # RecStep with default configuration: all optimizations on, 20
    # simulated worker threads, paper-scale memory/time budgets.
    engine = RecStep(RecStepConfig())

    result = engine.evaluate(get_program("TC"), {"arc": arc}, dataset="quickstart")

    print(f"status:      {result.status}")
    print(f"iterations:  {result.iterations}")
    print(f"sim seconds: {result.sim_seconds:.4f}")
    print(f"|tc|:        {len(result.tuples['tc'])}")
    print("tc tuples:")
    for pair in sorted(result.tuples["tc"]):
        print(f"  tc{pair}")

    # Custom programs are plain Datalog source. Negation (!) and
    # aggregation (MIN/MAX/SUM/COUNT/AVG in the head) are supported.
    source = """
        reachable(y) :- source(y).
        reachable(y) :- reachable(x), arc(x, y).
        unreachable(x) :- node(x), !reachable(x).
        node(x) :- arc(x, y).
        node(y) :- arc(x, y).
    """
    result = engine.evaluate(
        source, {"arc": arc, "source": np.array([[0]])}, dataset="quickstart"
    )
    print(f"\nreachable from 0:   {sorted(v for (v,) in result.tuples['reachable'])}")
    print(f"unreachable from 0: {sorted(v for (v,) in result.tuples['unreachable'])}")


if __name__ == "__main__":
    main()

"""Optimization ablation: what each RecStep technique buys (mini Figure 2).

Evaluates CSPA on the httpd proxy with each optimization disabled in
turn, reporting runtime as a percentage of RecStep-NO-OP — the exact
presentation of the paper's Figure 2.

Run with::

    python examples/optimization_ablation.py
"""

from repro import RecStep, RecStepConfig
from repro.analysis.harness import prepare_edb
from repro.programs import get_program

ABLATIONS = [
    ("RecStep", None),
    ("UIE off", "uie"),
    ("DSD off", "dsd"),
    ("OOF-FA", "oof-fa"),
    ("EOST off", "eost"),
    ("FAST-DEDUP off", "fast_dedup"),
    ("OOF-NA", "oof"),
]


def main() -> None:
    program = get_program("CSPA")
    edb = prepare_edb(program, "cspa-httpd")

    results: dict[str, float] = {}
    base = RecStepConfig()
    for label, ablation in ABLATIONS:
        config = base if ablation is None else base.without(ablation)
        result = RecStep(config).evaluate(program, edb, dataset="httpd")
        results[label] = result.sim_seconds
        print(f"measured {label:<16} {result.sim_seconds:8.2f}s")

    no_op = RecStep(RecStepConfig.no_op()).evaluate(program, edb, dataset="httpd")
    results["RecStep-NO-OP"] = no_op.sim_seconds
    print(f"measured {'RecStep-NO-OP':<16} {no_op.sim_seconds:8.2f}s")

    print("\nruntime as % of RecStep-NO-OP (Figure 2's y-axis):")
    for label, seconds in sorted(results.items(), key=lambda kv: kv[1]):
        percent = 100.0 * seconds / results["RecStep-NO-OP"]
        print(f"  {label:<16} {percent:5.1f}%  {'#' * int(percent / 2)}")


if __name__ == "__main__":
    main()

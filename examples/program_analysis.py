"""Static program analysis: Andersen's points-to and CSPA.

The paper's second domain (Section 6.2): non-linear and mutually
recursive Datalog. Andersen's analysis runs on a synthetic workload;
CSPA runs on the httpd program-graph proxy and is compared against the
Souffle baseline (BigDatalog cannot evaluate CSPA — mutual recursion).

Run with::

    python examples/program_analysis.py
"""

from repro.analysis.harness import format_status, run_workload


def main() -> None:
    print("Andersen's analysis (synthetic dataset 3)")
    result = run_workload("RecStep", "AA", "andersen-3")
    print(f"  status={result.status}  |pointsTo|={len(result.tuples['pointsTo'])}  "
          f"sim={result.sim_seconds:.2f}s  iterations={result.iterations}")

    print("\nCSPA on the httpd proxy, RecStep vs Souffle vs BigDatalog")
    for engine in ("RecStep", "Souffle", "BigDatalog"):
        result = run_workload(engine, "CSPA", "cspa-httpd")
        sizes = (
            f"vf={len(result.tuples.get('valueFlow', ()))} "
            f"ma={len(result.tuples.get('memoryAlias', ()))} "
            f"va={len(result.tuples.get('valueAlias', ()))}"
            if result.status == "ok"
            else result.unsupported_reason or result.status
        )
        print(f"  {engine:<12} {format_status(result):>16}   {sizes}")

    print("\nCSDA on the httpd proxy (the workload RecStep loses, Section 6.3)")
    for engine in ("RecStep", "Souffle", "BigDatalog"):
        result = run_workload(engine, "CSDA", "csda-httpd")
        print(f"  {engine:<12} {format_status(result):>16}   "
              f"iterations={result.iterations}")


if __name__ == "__main__":
    main()

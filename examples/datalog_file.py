"""Evaluating a ``.datalog`` file — the paper's Figure 1 entry point.

Writes a program file with ``.input``/``.output`` directives plus its
input relation, then evaluates it through ``repro.cli`` (also available
as ``python -m repro.cli program.datalog``).

Run with::

    python examples/datalog_file.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cli import run_datalog_file
from repro.datasets.io import load_relation, save_relation

PROGRAM = """
.input arc arc.tsv
.input source source.tsv
.output answer answer.tsv

% Which vertices can reach a cycle?
tc(x, y) :- arc(x, y).
tc(x, y) :- tc(x, z), arc(z, y).
onCycle(x) :- tc(x, x).
answer(x) :- source(x), tc(x, y), onCycle(y).
answer(x) :- source(x), onCycle(x).
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        base = Path(workdir)
        arc = np.array(
            [[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3], [6, 0], [7, 8]],
            dtype=np.int64,
        )
        save_relation(base / "arc.tsv", arc)
        save_relation(base / "source.tsv", np.arange(9).reshape(-1, 1))
        program = base / "cycles.datalog"
        program.write_text(PROGRAM)

        result = run_datalog_file(program, engine_name="RecStep")
        print(f"status: {result.status}, iterations: {result.iterations}")
        answer = load_relation(base / "answer.tsv", arity=1)
        print(f"vertices that can reach a cycle: {sorted(v for (v,) in answer.tolist())}")


if __name__ == "__main__":
    main()

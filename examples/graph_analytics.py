"""Graph analytics on a scale-free graph: REACH, CC, and SSSP.

The workloads the paper's introduction motivates from the graph-analysis
domain (Section 6.2), run on an R-MAT graph with RecStep and compared
against the BigDatalog baseline.

Run with::

    python examples/graph_analytics.py
"""

from repro.analysis.harness import format_status, run_workload

DATASET = "RMAT-20K"
PROGRAMS = ["REACH", "CC", "SSSP"]
ENGINES = ["RecStep", "BigDatalog"]


def main() -> None:
    print(f"graph analytics on {DATASET} (R-MAT, ~200K edges)\n")
    header = f"{'program':<10}" + "".join(f"{engine:>22}" for engine in ENGINES)
    print(header)
    print("-" * len(header))
    for program in PROGRAMS:
        cells = []
        for engine in ENGINES:
            result = run_workload(engine, program, DATASET, seed=1)
            label = format_status(result)
            if result.status == "ok":
                output = max(result.sizes().values())
                label = f"{label} ({output} tuples)"
            cells.append(f"{label:>22}")
        print(f"{program:<10}" + "".join(cells))

    # Per-run details are on the EvaluationResult: traces, iterations...
    result = run_workload("RecStep", "CC", DATASET, seed=1)
    print(f"\nCC detail: {result.iterations} semi-naive iterations, "
          f"peak modeled memory {result.peak_memory_bytes / 1e6:.1f} MB")
    trace = result.memory_trace.as_tuples()
    print(f"memory trace has {len(trace)} samples; final = {trace[-1][1] / 1e6:.1f} MB")


if __name__ == "__main__":
    main()

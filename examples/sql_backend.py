"""Using the relational backend directly.

RecStep compiles Datalog to SQL over ``repro.engine.Database`` — an
in-memory parallel RDBMS you can also drive by hand, the way the paper's
Figure 4 shows generated queries. This example writes the semi-naive TC
loop in raw SQL, which is literally what the RecStep interpreter does.

Run with::

    python examples/sql_backend.py
"""

from repro.engine import Database


def main() -> None:
    db = Database(threads=20)

    db.execute_script(
        """
        CREATE TABLE arc (c0 INT, c1 INT);
        INSERT INTO arc VALUES (0,1),(1,2),(2,3),(0,3),(3,4);
        CREATE TABLE tc (c0 INT, c1 INT);
        CREATE TABLE tc_delta (c0 INT, c1 INT);
        CREATE TABLE tc_mdelta (c0 INT, c1 INT);
        """
    )

    # Iteration 0: the base rule.
    db.execute("INSERT INTO tc_mdelta SELECT a.c0 AS c0, a.c1 AS c1 FROM arc a")
    db.analyze("tc_mdelta")
    db.dedup_table("tc_mdelta")
    delta = db.set_difference("tc_mdelta", "tc", "OPSD").delta
    db.append_rows("tc", delta)
    db.replace_rows("tc_delta", delta)
    db.execute("DELETE FROM tc_mdelta")

    # The semi-naive loop: join the delta with arc until fixpoint.
    iteration = 0
    while delta.shape[0]:
        iteration += 1
        db.execute(
            "INSERT INTO tc_mdelta "
            "SELECT d.c0 AS c0, a.c1 AS c1 FROM tc_delta d, arc a WHERE d.c1 = a.c0"
        )
        db.analyze("tc_mdelta")
        db.dedup_table("tc_mdelta")
        strategy = "OPSD" if db.table_size("tc") <= db.table_size("tc_mdelta") else "TPSD"
        delta = db.set_difference("tc_mdelta", "tc", strategy).delta
        db.append_rows("tc", delta)
        db.replace_rows("tc_delta", delta)
        db.execute("DELETE FROM tc_mdelta")
        print(f"iteration {iteration}: |delta| = {delta.shape[0]} ({strategy})")

    db.commit()  # EOST: one flush at the end

    rows = db.execute("SELECT t.c0 AS x, t.c1 AS y FROM tc t")
    print(f"\n|tc| = {rows.shape[0]}")
    counts = db.execute(
        "SELECT t.c0 AS x, COUNT(t.c1) AS reachable FROM tc t GROUP BY t.c0"
    )
    for x, c in sorted(map(tuple, counts)):
        print(f"vertex {x} reaches {c} vertices")
    print(f"\nsimulated seconds: {db.sim_seconds:.4f}  "
          f"queries executed: {db.queries_executed}")


if __name__ == "__main__":
    main()

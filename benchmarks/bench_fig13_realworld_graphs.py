"""Figure 13: REACH / CC / SSSP on the real-world graph proxies.

Paper's shape: RecStep completes all four graphs on all three programs;
BigDatalog runs out of memory on the two biggest graphs (arabic,
twitter); Souffle can only run REACH (no recursive aggregation); where
baselines complete, RecStep is ~3-6x faster.
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    cell,
    grid_table,
    records_from,
    write_result,
)

GRAPHS = ["livejournal", "orkut", "arabic", "twitter"]
PROGRAMS = ["REACH", "CC", "SSSP"]
ENGINES = ["RecStep", "Souffle", "BigDatalog"]


@functools.lru_cache(maxsize=1)
def realworld_results():
    results = {}
    for program in PROGRAMS:
        for dataset in GRAPHS:
            for engine in ENGINES:
                results[(program, dataset, engine)] = cached_run(
                    engine, program, dataset,
                    memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
                )
    return results


def test_fig13_realworld(benchmark):
    results = benchmark.pedantic(realworld_results, rounds=1, iterations=1)

    tables = []
    for program in PROGRAMS:
        cells = {
            (dataset, engine): cell(results[(program, dataset, engine)])
            for dataset in GRAPHS
            for engine in ENGINES
        }
        tables.append(
            grid_table(
                f"Figure 13: {program} on real-world graph proxies",
                GRAPHS,
                ENGINES,
                cells,
            )
        )
    write_result(
        "fig13_realworld_graphs",
        "\n\n".join(tables),
        runs=records_from(results, ("program", "dataset", "engine")),
        config={
            "programs": PROGRAMS,
            "datasets": GRAPHS,
            "engines": ENGINES,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # RecStep completes every graph on every program.
    for program in PROGRAMS:
        for dataset in GRAPHS:
            assert results[(program, dataset, "RecStep")].status == "ok", (
                program, dataset,
            )

    # BigDatalog OOMs on the biggest graph (twitter), like the paper.
    twitter_failures = [
        program
        for program in PROGRAMS
        if results[(program, "twitter", "BigDatalog")].status == "oom"
    ]
    assert twitter_failures

    # Where single-node baselines complete, RecStep is faster.
    for (program, dataset, engine), result in results.items():
        if engine != "RecStep" and result.status == "ok":
            assert (
                results[(program, dataset, "RecStep")].sim_seconds < result.sim_seconds
            ), (program, dataset, engine)

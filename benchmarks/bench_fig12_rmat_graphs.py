"""Figure 12: REACH / CC / SSSP on the R-MAT sweep.

Paper's shape: RecStep's runtime grows near-proportionally with graph
size on all three programs; Souffle cannot run CC/SSSP (recursive
aggregation); RecStep is several times faster than single-node
BigDatalog throughout.
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    cell,
    grid_table,
    records_from,
    write_result,
)

RMAT_SWEEP = ["RMAT-10K", "RMAT-40K", "RMAT-160K"]
PROGRAMS = ["REACH", "CC", "SSSP"]
ENGINES = ["RecStep", "Souffle", "BigDatalog"]


@functools.lru_cache(maxsize=1)
def rmat_results():
    results = {}
    for program in PROGRAMS:
        for dataset in RMAT_SWEEP:
            for engine in ENGINES:
                results[(program, dataset, engine)] = cached_run(
                    engine, program, dataset,
                    memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
                )
    return results


def test_fig12_rmat(benchmark):
    results = benchmark.pedantic(rmat_results, rounds=1, iterations=1)

    tables = []
    for program in PROGRAMS:
        cells = {
            (dataset, engine): cell(results[(program, dataset, engine)])
            for dataset in RMAT_SWEEP
            for engine in ENGINES
        }
        tables.append(
            grid_table(f"Figure 12: {program} on RMAT graphs", RMAT_SWEEP, ENGINES, cells)
        )
    write_result(
        "fig12_rmat_graphs",
        "\n\n".join(tables),
        runs=records_from(results, ("program", "dataset", "engine")),
        config={
            "programs": PROGRAMS,
            "datasets": RMAT_SWEEP,
            "engines": ENGINES,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # RecStep completes everything, near-proportional growth.
    for program in PROGRAMS:
        times = [results[(program, d, "RecStep")].sim_seconds for d in RMAT_SWEEP]
        assert all(r.status == "ok" for r in
                   (results[(program, d, "RecStep")] for d in RMAT_SWEEP))
        assert times[-1] > times[0]

    # Souffle cannot evaluate the recursive-aggregation programs.
    for dataset in RMAT_SWEEP:
        assert results[("CC", dataset, "Souffle")].status == "unsupported"
        assert results[("SSSP", dataset, "Souffle")].status == "unsupported"
        assert results[("REACH", dataset, "Souffle")].status == "ok"

    # RecStep is the fastest scale-up engine on every completed cell.
    for (program, dataset, engine), result in results.items():
        if engine != "RecStep" and result.status == "ok":
            assert (
                results[(program, dataset, "RecStep")].sim_seconds
                < result.sim_seconds
            ), (program, dataset, engine)

    # And the 3-6x headline: at the largest size, RecStep leads
    # BigDatalog by at least ~2x on every program.
    for program in PROGRAMS:
        big = results[(program, RMAT_SWEEP[-1], "BigDatalog")]
        if big.status == "ok":
            ratio = big.sim_seconds / results[(program, RMAT_SWEEP[-1], "RecStep")].sim_seconds
            assert ratio > 2.0, (program, ratio)

"""Figure 3: memory effects of the optimizations (CSPA on httpd).

Complements Figure 2: for the same ablation runs, reports peak and mean
modeled memory (as % of the scaled server budget) per configuration.
Key shapes: FAST-DEDUP off raises peak memory (generic hash entries),
and NO-OP's footprint exceeds fully-optimized RecStep's.
"""

from benchmarks.bench_fig2_optimizations import ablation_results
from benchmarks.common import MEMORY_BUDGET, records_from, write_result


def test_fig3_memory_effects(benchmark):
    results = benchmark.pedantic(ablation_results, rounds=1, iterations=1)

    lines = ["Figure 3: memory effects of optimizations (CSPA on httpd)",
             f"{'configuration':<16}{'peak %':>8}{'mean %':>8}{'samples':>9}"]
    stats = {}
    for label, result in results.items():
        trace = result.memory_trace
        peak = 100.0 * trace.peak() / MEMORY_BUDGET
        mean = 100.0 * trace.mean() / MEMORY_BUDGET
        stats[label] = (peak, mean)
        lines.append(f"{label:<16}{peak:7.2f}%{mean:7.2f}%{len(trace.samples):9d}")
    write_result(
        "fig3_memory_opt",
        "\n".join(lines),
        runs=records_from(results, ("configuration",)),
        config={
            "program": "CSPA",
            "dataset": "cspa-httpd",
            "memory_budget": MEMORY_BUDGET,
            "shares_runs_with": "fig2_optimizations",
        },
    )

    # Turning FAST-DEDUP off costs memory (generic <key,value> entries).
    assert stats["FAST-DEDUP"][0] > stats["RecStep"][0]
    # The all-off configuration uses at least as much memory as RecStep.
    assert stats["RecStep-NO-OP"][0] >= stats["RecStep"][0]
    # Every run stayed within the modeled budget (all completed).
    assert all(peak <= 100.0 for peak, _ in stats.values())

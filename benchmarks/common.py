"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one bench module. Each module:

1. computes the figure's full data grid through the cached runner here
   (so figures sharing runs — e.g. Fig 10 runtimes and Fig 11 memory —
   pay for them once),
2. renders the same rows/series the paper reports into
   ``benchmarks/results/<figure>.txt`` (and stdout under ``-s``),
3. asserts the figure's qualitative *shape* (who wins, what fails), and
4. exposes one representative cell to pytest-benchmark for timing.

Absolute runtimes are simulated seconds on the scaled datasets; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import functools
from pathlib import Path

from repro.analysis.harness import run_workload
from repro.common.records import EvaluationResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Modeled server memory: the paper's 160 GB scaled by the ~1/100 dataset
#: scale (DESIGN.md, Substitutions).
MEMORY_BUDGET = int(1.6e9)

#: Simulated-seconds budget standing in for the paper's 10 h timeout.
TIME_BUDGET = 3_600.0

#: Tight budget for bddbddb probes: keeps the known ">10h" cases cheap.
BDD_TIME_BUDGET = 12.0


@functools.lru_cache(maxsize=None)
def cached_run(
    engine: str,
    program: str,
    dataset: str,
    threads: int = 20,
    memory_budget: int = MEMORY_BUDGET,
    time_budget: float = TIME_BUDGET,
    seed: int = 0,
) -> EvaluationResult:
    """Memoized run_workload so benches sharing cells never recompute."""
    return run_workload(
        engine,
        program,
        dataset,
        threads=threads,
        memory_budget=memory_budget,
        time_budget=time_budget,
        seed=seed,
    )


def engine_budget(engine: str) -> float:
    """bddbddb gets the tight probe budget; everyone else the scaled 10 h."""
    return BDD_TIME_BUDGET if engine == "bddbddb" else TIME_BUDGET


def write_result(name: str, text: str) -> Path:
    """Persist a figure's rendered table and echo it for ``-s`` runs."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
    return path


def cell(result: EvaluationResult) -> str:
    """Paper-style bar label: seconds, or the failure mode."""
    if result.status == "ok":
        return f"{result.sim_seconds:9.2f}s"
    if result.status == "oom":
        return "       OOM"
    if result.status == "timeout":
        return "   timeout"
    return "       n/a"


def grid_table(
    title: str,
    row_labels: list[str],
    column_labels: list[str],
    cells: dict[tuple[str, str], str],
) -> str:
    """Render a row x column grid with a title line."""
    width = max(14, *(len(label) + 2 for label in row_labels))
    header = " " * width + "".join(f"{c:>14}" for c in column_labels)
    lines = [title, header, "-" * len(header)]
    for row in row_labels:
        line = f"{row:<{width}}" + "".join(
            f"{cells.get((row, c), '-'):>14}" for c in column_labels
        )
        lines.append(line)
    return "\n".join(lines)

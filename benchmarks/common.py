"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one bench module. Each module:

1. computes the figure's full data grid through the cached runner here
   (so figures sharing runs — e.g. Fig 10 runtimes and Fig 11 memory —
   pay for them once),
2. renders the same rows/series the paper reports into
   ``benchmarks/results/<figure>.txt`` (and stdout under ``-s``),
3. asserts the figure's qualitative *shape* (who wins, what fails), and
4. exposes one representative cell to pytest-benchmark for timing.

Absolute runtimes are simulated seconds on the scaled datasets; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import subprocess
from dataclasses import fields as dataclass_fields
from pathlib import Path

from repro.analysis.harness import run_workload
from repro.common.records import EvaluationResult
from repro.core.config import RecStepConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Version of the machine-readable result schema written next to every
#: figure's text table. Bump when the record shape changes.
#: v2: payloads carry a ``provenance`` block (git SHA + engine-config
#: fingerprint) and run records report ``peak_transient_bytes``.
RESULT_SCHEMA_VERSION = 2

#: Modeled server memory: the paper's 160 GB scaled by the ~1/100 dataset
#: scale (DESIGN.md, Substitutions).
MEMORY_BUDGET = int(1.6e9)

#: Simulated-seconds budget standing in for the paper's 10 h timeout.
TIME_BUDGET = 3_600.0

#: Tight budget for bddbddb probes: keeps the known ">10h" cases cheap.
BDD_TIME_BUDGET = 12.0


@functools.lru_cache(maxsize=None)
def cached_run(
    engine: str,
    program: str,
    dataset: str,
    threads: int = 20,
    memory_budget: int = MEMORY_BUDGET,
    time_budget: float = TIME_BUDGET,
    seed: int = 0,
    partitioned_exec: bool = True,
) -> EvaluationResult:
    """Memoized run_workload so benches sharing cells never recompute.

    ``partitioned_exec`` is a RecStep knob (radix-partitioned execution,
    the Figure 8 shared-vs-partitioned comparison); the comparison
    engines have no equivalent, so it is only forwarded to RecStep.
    """
    extra = {}
    if engine == "RecStep":
        extra["partitioned_exec"] = partitioned_exec
    return run_workload(
        engine,
        program,
        dataset,
        threads=threads,
        memory_budget=memory_budget,
        time_budget=time_budget,
        seed=seed,
        **extra,
    )


def engine_budget(engine: str) -> float:
    """bddbddb gets the tight probe budget; everyone else the scaled 10 h."""
    return BDD_TIME_BUDGET if engine == "bddbddb" else TIME_BUDGET


def git_sha() -> str:
    """The repository HEAD commit, or "unknown" outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def config_fingerprint(config: RecStepConfig | None = None) -> dict:
    """Every RecStepConfig knob plus a stable digest over them.

    The digest makes "was this baseline produced under the same engine
    configuration" a single string comparison — including the ambient
    ``REPRO_CHAOS_SEED`` (it feeds the ``fault_seed`` default), so a
    chaos-armed run can never silently pass for a clean one.
    """
    config = config or RecStepConfig()
    knobs = {}
    for field_info in dataclass_fields(config):
        value = getattr(config, field_info.name)
        knobs[field_info.name] = value.value if isinstance(value, enum.Enum) else value
    digest = hashlib.sha256(
        json.dumps(knobs, sort_keys=True, default=str).encode()
    ).hexdigest()
    return {"digest": digest[:16], "knobs": knobs}


def provenance(engine_config: RecStepConfig | None = None) -> dict:
    """The provenance block stamped into every result payload."""
    return {
        "git_sha": git_sha(),
        "config_fingerprint": config_fingerprint(engine_config),
    }


def write_result(
    name: str,
    text: str,
    runs: list[dict] | None = None,
    config: dict | None = None,
    engine_config: RecStepConfig | None = None,
) -> Path:
    """Persist a figure's rendered table and echo it for ``-s`` runs.

    Alongside the human-readable ``<name>.txt``, a machine-readable
    ``<name>.json`` is always written: figure id, the bench's config,
    a provenance block (git SHA, engine-config fingerprint), and one
    record per run (see :func:`run_record`). Benches whose output is
    not built from evaluation runs (capability matrices, registries)
    emit an empty ``runs`` list.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    payload = {
        "figure": name,
        "schema_version": RESULT_SCHEMA_VERSION,
        "config": config or {},
        "provenance": provenance(engine_config),
        "runs": runs or [],
    }
    json_path = RESULTS_DIR / f"{name}.json"
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n{text}\n[written to {path} and {json_path}]")
    return path


def run_record(result: EvaluationResult, **labels) -> dict:
    """One run as a JSON-able record (the ``runs`` entry schema).

    ``labels`` carries the bench's grid coordinates (threads, scale,
    variant...) on top of the engine/program/dataset identity the result
    already knows.
    """
    record = {
        **labels,
        "engine": result.engine,
        "program": result.program,
        "dataset": result.dataset,
        "status": result.status,
        "sim_seconds": result.sim_seconds,
        "wall_seconds": result.wall_seconds,
        "iterations": result.iterations,
        "peak_memory_bytes": result.peak_memory_bytes,
        "peak_transient_bytes": result.peak_transient_bytes,
        "sizes": result.sizes(),
        "detail": dict(result.detail),
        "counters": dict(result.profile.counters) if result.profile is not None else {},
    }
    if result.status == "unsupported":
        record["unsupported_reason"] = result.unsupported_reason
    return record


def records_from(results: dict, key_names: tuple[str, ...]) -> list[dict]:
    """Records for a bench's ``{grid key tuple: result}`` dict."""
    records = []
    for key, result in sorted(results.items(), key=lambda kv: str(kv[0])):
        key_tuple = key if isinstance(key, tuple) else (key,)
        records.append(run_record(result, **dict(zip(key_names, key_tuple))))
    return records


def cell(result: EvaluationResult) -> str:
    """Paper-style bar label: seconds, or the failure mode."""
    if result.status == "ok":
        return f"{result.sim_seconds:9.2f}s"
    if result.status == "oom":
        return "       OOM"
    if result.status == "timeout":
        return "   timeout"
    return "       n/a"


def grid_table(
    title: str,
    row_labels: list[str],
    column_labels: list[str],
    cells: dict[tuple[str, str], str],
) -> str:
    """Render a row x column grid with a title line."""
    width = max(14, *(len(label) + 2 for label in row_labels))
    header = " " * width + "".join(f"{c:>14}" for c in column_labels)
    lines = [title, header, "-" * len(header)]
    for row in row_labels:
        line = f"{row:<{width}}" + "".join(
            f"{cells.get((row, c), '-'):>14}" for c in column_labels
        )
        lines.append(line)
    return "\n".join(lines)

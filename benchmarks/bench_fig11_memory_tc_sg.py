"""Figure 11: memory usage of TC and SG on G1K.

Memory traces for RecStep, Souffle, and BigDatalog on the scaled G10K
stand-in. Paper's shape: RecStep's (bit-matrix) footprint is a small,
flat fraction of the machine; Souffle's and especially BigDatalog's grow
much larger over the run.
"""

from benchmarks.bench_fig10_tc_sg import tc_sg_results
from benchmarks.common import MEMORY_BUDGET, records_from, write_result

ENGINES = ["RecStep", "Souffle", "BigDatalog"]


def test_fig11_memory_tc_sg(benchmark):
    results = benchmark.pedantic(tc_sg_results, rounds=1, iterations=1)

    lines = []
    peaks = {}
    for program in ("TC", "SG"):
        lines.append(f"Figure 11{'a' if program == 'TC' else 'b'}: "
                     f"{program} memory on G1K (% of modeled budget)")
        lines.append(f"{'engine':<14}{'peak %':>8}{'final %':>9}{'status':>10}")
        for engine in ENGINES:
            result = results[(program, "G1K", engine)]
            trace = result.memory_trace
            peak = 100.0 * trace.peak() / MEMORY_BUDGET
            final = 100.0 * trace.final() / MEMORY_BUDGET
            peaks[(program, engine)] = peak
            lines.append(
                f"{engine:<14}{peak:>7.2f}%{final:>8.2f}%{result.status:>10}"
            )
        lines.append("")
    figure_cells = {
        key: result
        for key, result in results.items()
        if key[1] == "G1K" and key[2] in ENGINES
    }
    write_result(
        "fig11_memory_tc_sg",
        "\n".join(lines),
        runs=records_from(figure_cells, ("program", "dataset", "engine")),
        config={
            "dataset": "G1K",
            "engines": ENGINES,
            "memory_budget": MEMORY_BUDGET,
            "shares_runs_with": "fig10_tc_sg",
        },
    )

    for program in ("TC", "SG"):
        # RecStep (PBME) uses the least memory of the three.
        assert peaks[(program, "RecStep")] < peaks[(program, "Souffle")]
        assert peaks[(program, "RecStep")] < peaks[(program, "BigDatalog")]
    # SG is more memory-demanding than TC for the relational engines.
    assert peaks[("SG", "Souffle")] > peaks[("TC", "Souffle")]

"""Table 3: summary of Datalog programs and datasets in the evaluation.

Regenerated from the program library and dataset registry, so the table
always reflects what the repository actually ships.
"""

from repro.datasets.registry import DATASETS, GNP_SIZES, RMAT_SIZES
from repro.datasets.realworld import REALWORLD_SPECS
from repro.programs import ALL_PROGRAMS

from benchmarks.common import write_result

#: program -> the dataset families the paper evaluates it on (Table 3).
PROGRAM_DATASETS = {
    "TC": sorted(GNP_SIZES),
    "SG": sorted(GNP_SIZES),
    "REACH": sorted(REALWORLD_SPECS) + ["RMAT-*"],
    "CC": sorted(REALWORLD_SPECS) + ["RMAT-*"],
    "SSSP": sorted(REALWORLD_SPECS) + ["RMAT-*"],
    "AA": [f"andersen-{k}" for k in range(1, 8)],
    "CSDA": ["csda-linux", "csda-postgresql", "csda-httpd"],
    "CSPA": ["cspa-linux", "cspa-postgresql", "cspa-httpd"],
}


def build_table() -> str:
    lines = ["Table 3: Datalog programs and datasets", ""]
    for name, datasets in PROGRAM_DATASETS.items():
        spec = ALL_PROGRAMS[name]
        lines.append(f"{name:<6} {spec.title:<42} {', '.join(datasets)}")
    lines.append("")
    lines.append(f"registered datasets: {len(DATASETS)}")
    lines.append(f"RMAT sweep sizes: {', '.join(sorted(RMAT_SIZES))}")
    return "\n".join(lines)


def test_table3_registry(benchmark):
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    write_result(
        "table3_registry",
        table,
        config={
            "program_datasets": PROGRAM_DATASETS,
            "registered_datasets": len(DATASETS),
            "rmat_sizes": sorted(RMAT_SIZES),
        },
    )

    # Every dataset the table references must be loadable from the registry.
    for datasets in PROGRAM_DATASETS.values():
        for name in datasets:
            if name == "RMAT-*":
                continue
            assert name in DATASETS, name
    # And every paper program is present.
    assert set(PROGRAM_DATASETS) <= set(ALL_PROGRAMS)

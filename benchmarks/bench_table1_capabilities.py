"""Table 1: qualitative comparison between systems.

Probed live: each capability cell comes from running a witness program
on the actual engine implementations (see repro.analysis.capabilities).
"""

from repro.analysis.capabilities import capability_matrix, format_capability_table

from benchmarks.common import write_result


def test_table1_capabilities(benchmark):
    matrix = benchmark.pedantic(capability_matrix, rounds=1, iterations=1)
    write_result(
        "table1_capabilities",
        format_capability_table(matrix),
        config={"matrix": {row: dict(cells) for row, cells in matrix.items()}},
    )

    # The paper's Table 1 rows, verified against our implementations.
    assert matrix["Mutual Recursion"]["RecStep"] == "yes"
    assert matrix["Mutual Recursion"]["BigDatalog"] == "no"
    assert matrix["Recursive Aggregation"]["RecStep"] == "yes"
    assert matrix["Recursive Aggregation"]["Souffle"] == "no"
    assert matrix["Recursive Aggregation"]["BigDatalog"] == "yes"
    assert matrix["Non-Recursive Aggregation"]["Graspan"] == "no"
    assert matrix["Non-Recursive Aggregation"]["bddbddb"] == "no"
    assert matrix["Stratified Negation"]["RecStep"] == "yes"
    assert all(
        matrix[row]["RecStep"] == "yes"
        for row in (
            "Mutual Recursion",
            "Non-Recursive Aggregation",
            "Recursive Aggregation",
            "Stratified Negation",
        )
    )

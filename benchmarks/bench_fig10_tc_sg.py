"""Figure 10: TC and SG performance comparison on Gn-p graphs.

All engines across the (scaled) Gn-p sweep. Paper's shape: RecStep is
the only scale-up system completing everything (PBME); bddbddb is orders
of magnitude slower / times out; Souffle and BigDatalog fail on the
dense/large graphs; Distributed-BigDatalog (120 cores, 450 GB) edges out
RecStep only on the largest graphs.
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    cell,
    engine_budget,
    grid_table,
    records_from,
    write_result,
)

TC_DATASETS = ["G500", "G1K", "G1K-0.05", "G1K-0.1", "G2K", "G4K"]
SG_DATASETS = ["G500", "G700", "G1K"]
ENGINES = ["RecStep", "Distributed-BigDatalog", "Souffle", "BigDatalog", "bddbddb"]

#: bddbddb only attempts the smallest graphs; the paper reports the rest
#: as >10h, which our tight probe budget reproduces as quick timeouts.
BDD_DATASETS = {"G500", "G1K"}


@functools.lru_cache(maxsize=1)
def tc_sg_results():
    results = {}
    for program, datasets in (("TC", TC_DATASETS), ("SG", SG_DATASETS)):
        for dataset in datasets:
            for engine in ENGINES:
                if engine == "bddbddb" and dataset not in BDD_DATASETS:
                    continue
                results[(program, dataset, engine)] = cached_run(
                    engine,
                    program,
                    dataset,
                    memory_budget=MEMORY_BUDGET,
                    time_budget=engine_budget(engine),
                )
    return results


def test_fig10_tc_sg(benchmark):
    results = benchmark.pedantic(tc_sg_results, rounds=1, iterations=1)

    tables = []
    for program, datasets in (("TC", TC_DATASETS), ("SG", SG_DATASETS)):
        cells = {
            (dataset, engine): cell(results[(program, dataset, engine)])
            for dataset in datasets
            for engine in ENGINES
            if (program, dataset, engine) in results
        }
        tables.append(
            grid_table(
                f"Figure 10{'a' if program == 'TC' else 'b'}: {program} runtime",
                datasets,
                ENGINES,
                cells,
            )
        )
    write_result(
        "fig10_tc_sg",
        "\n\n".join(tables),
        runs=records_from(results, ("program", "dataset", "engine")),
        config={
            "tc_datasets": TC_DATASETS,
            "sg_datasets": SG_DATASETS,
            "engines": ENGINES,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # RecStep completes every graph for both programs (the headline).
    for (program, dataset, engine), result in results.items():
        if engine == "RecStep":
            assert result.status == "ok", (program, dataset)

    # The other scale-up engines fail somewhere RecStep does not.
    for engine in ("Souffle", "BigDatalog"):
        failures = [
            key for key, result in results.items()
            if key[2] == engine and result.status in ("oom", "timeout")
        ]
        assert failures, engine

    # Where the single-node baselines complete TC, RecStep is faster.
    for dataset in TC_DATASETS:
        recstep = results[("TC", dataset, "RecStep")]
        for engine in ("Souffle", "BigDatalog"):
            other = results[("TC", dataset, engine)]
            if other.status == "ok":
                assert recstep.sim_seconds < other.sim_seconds, (dataset, engine)

    # bddbddb: far slower than RecStep even where it finishes.
    for key, result in results.items():
        if key[2] == "bddbddb" and result.status == "ok":
            assert result.sim_seconds > 3 * results[(key[0], key[1], "RecStep")].sim_seconds

    # Distributed-BigDatalog survives the sparse graphs (cluster memory)
    # but never beats RecStep on the small ones, where its startup and
    # stage overheads dominate (paper: D-BD wins only on the largest
    # graphs; see EXPERIMENTS.md for the proxy-scale deviation).
    for dataset in ("G500", "G1K"):
        assert results[("TC", dataset, "Distributed-BigDatalog")].status == "ok"
        assert (
            results[("TC", dataset, "RecStep")].sim_seconds
            < results[("TC", dataset, "Distributed-BigDatalog")].sim_seconds
        )

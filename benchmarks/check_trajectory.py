"""Regression gate: fresh trajectory run vs the committed BENCH baselines.

Re-runs the trajectory sweep (``--scope smoke`` in CI: the smallest rung
of every ladder, with the exact seeds and repetition count the committed
baseline used) and compares per-rung **medians** of the gated metrics
against ``BENCH_engine.json`` / ``BENCH_server.json`` at the repo root.

A metric fails when the fresh median leaves the noise band::

    |fresh - base| > max(rel_tol * |base|, stddev_mult * base_stddev, floor)

The gated metrics are simulated-clock deterministic (sim seconds,
throughput in tuples per simulated second, peak modeled memory, service
latency percentiles), so on an unchanged engine the fresh medians match
the baseline exactly and the band only absorbs intentional noise-level
drift. Wall-clock is never gated. A baseline produced under a different
engine-config fingerprint (e.g. with ``REPRO_CHAOS_SEED`` armed) fails
fast: the comparison would be meaningless. See EXPERIMENTS.md for the
baseline-refresh policy.

Usage (CI)::

    PYTHONPATH=src python -m benchmarks.check_trajectory --scope smoke
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from benchmarks.common import config_fingerprint
from benchmarks.trajectory import (
    ENGINE_GATED_METRICS,
    POINT_GATED_METRICS,
    POINT_SPEEDUP_FLOOR,
    REPO_ROOT,
    REPS,
    SERVER_GATED_METRICS,
    UPDATE_GATED_METRICS,
    UPDATE_SPEEDUP_FLOOR,
    run_sweeps,
)

#: Default noise band: 10% relative, 3 baseline standard deviations,
#: whichever is larger (then the per-metric absolute floor).
REL_TOL = 0.10
STDDEV_MULT = 3.0

#: Per-metric absolute floors so near-zero baselines don't demand
#: impossible precision.
ABS_FLOORS = {
    "sim_seconds": 1e-3,
    "throughput": 1.0,
    "peak_memory_bytes": 4096.0,
    "latency_p50": 1e-3,
    "latency_p95": 1e-3,
    "latency_p99": 1e-3,
    "max_queue_depth": 0.5,
    "maintain_sim_seconds": 1e-4,
    "recompute_sim_seconds": 1e-3,
    "answer_sim_seconds": 1e-4,
    "full_sim_seconds": 1e-3,
}


def band_for(metric: str, summary: dict, rel_tol: float, stddev_mult: float) -> float:
    """The allowed |fresh - base| for one metric's baseline summary."""
    return max(
        rel_tol * abs(summary["median"]),
        stddev_mult * summary.get("stddev", 0.0),
        ABS_FLOORS.get(metric, 0.0),
    )


def compare_rung(
    label: str,
    fresh: dict,
    base: dict,
    metrics: tuple[str, ...],
    rel_tol: float,
    stddev_mult: float,
) -> tuple[list[str], list[str]]:
    """Compare one rung; returns (violations, checked lines)."""
    violations, checked = [], []
    for metric in metrics:
        base_summary = base.get(metric)
        fresh_summary = fresh.get(metric)
        if base_summary is None:
            continue
        if fresh_summary is None:
            violations.append(f"{label}: metric {metric} missing from fresh run")
            continue
        band = band_for(metric, base_summary, rel_tol, stddev_mult)
        delta = fresh_summary["median"] - base_summary["median"]
        line = (
            f"{label}: {metric} base={base_summary['median']:g} "
            f"fresh={fresh_summary['median']:g} delta={delta:+g} band=±{band:g}"
        )
        if abs(delta) > band:
            violations.append("REGRESSION " + line)
        else:
            checked.append("ok " + line)
    return violations, checked


def compare_engine(
    fresh: dict, baseline: dict, rel_tol: float = REL_TOL, stddev_mult: float = STDDEV_MULT
) -> tuple[list[str], list[str]]:
    """Gate every (program, dataset) rung present in both payloads."""
    base_rungs = {
        (program, rung["dataset"]): rung
        for program, rungs in baseline["ladders"].items()
        for rung in rungs
    }
    violations, checked = [], []
    matched = 0
    for program, rungs in fresh["ladders"].items():
        for rung in rungs:
            key = (program, rung["dataset"])
            base = base_rungs.get(key)
            if base is None:
                continue
            matched += 1
            v, c = compare_rung(
                f"engine {program}/{rung['dataset']}",
                rung,
                base,
                ENGINE_GATED_METRICS,
                rel_tol,
                stddev_mult,
            )
            violations.extend(v)
            checked.extend(c)
    if matched == 0:
        violations.append("engine: no fresh rung matches any baseline rung")
    # Constrained-budget rungs (the spill-tier canary): gate the spilled
    # run's metrics like any other rung, plus the qualitative contract —
    # OOM without the tier, done with it.
    base_constrained = {
        (rung["program"], rung["dataset"]): rung
        for rung in baseline.get("constrained", [])
    }
    for rung in fresh.get("constrained", []):
        key = (rung["program"], rung["dataset"])
        base = base_constrained.get(key)
        if base is None:
            continue
        label = f"engine constrained {key[0]}/{key[1]}"
        for field in ("status_without_spill", "statuses"):
            if rung.get(field) != base.get(field):
                violations.append(
                    f"REGRESSION {label}: {field} {base.get(field)!r} "
                    f"-> {rung.get(field)!r}"
                )
        v, c = compare_rung(
            label, rung, base, ENGINE_GATED_METRICS, rel_tol, stddev_mult
        )
        violations.extend(v)
        checked.extend(c)
    # Update rungs (the incremental-maintenance canary): noise-band the
    # maintain/recompute timings like any other rung, plus two hard
    # qualitative contracts — the maintained fixpoint stays identical to
    # a from-scratch recompute, and small insert-dominant batches stay
    # at least UPDATE_SPEEDUP_FLOOR times faster than recomputing.
    base_update = {
        (rung["program"], rung["dataset"]): rung
        for rung in baseline.get("update", [])
    }
    for rung in fresh.get("update", []):
        key = (rung["program"], rung["dataset"])
        base = base_update.get(key)
        if base is None:
            continue
        label = f"engine update {key[0]}/{key[1]}"
        if rung.get("statuses") != base.get("statuses"):
            violations.append(
                f"REGRESSION {label}: statuses {base.get('statuses')!r} "
                f"-> {rung.get('statuses')!r}"
            )
        if not rung.get("identity", False):
            violations.append(
                f"REGRESSION {label}: maintained fixpoint diverged from "
                "the from-scratch recompute"
            )
        floor = base.get("speedup_floor", UPDATE_SPEEDUP_FLOOR)
        speedup = rung.get("speedup", 0.0)
        line = f"{label}: speedup {speedup:g}x (floor {floor:g}x)"
        if speedup < floor:
            violations.append("REGRESSION " + line)
        else:
            checked.append("ok " + line)
        v, c = compare_rung(
            label, rung, base, UPDATE_GATED_METRICS, rel_tol, stddev_mult
        )
        violations.extend(v)
        checked.extend(c)
    # Point rungs (the demand-evaluation canary): noise-band the
    # answer/full timings, plus two hard qualitative contracts — the
    # magic-rewritten answers stay tuple-identical to post-filtering the
    # full materialization, and the bound goal stays at least
    # POINT_SPEEDUP_FLOOR times faster than materializing everything.
    base_point = {
        (rung["program"], rung["dataset"]): rung
        for rung in baseline.get("point", [])
    }
    for rung in fresh.get("point", []):
        key = (rung["program"], rung["dataset"])
        base = base_point.get(key)
        if base is None:
            continue
        label = f"engine point {key[0]}/{key[1]}"
        if rung.get("statuses") != base.get("statuses"):
            violations.append(
                f"REGRESSION {label}: statuses {base.get('statuses')!r} "
                f"-> {rung.get('statuses')!r}"
            )
        if not rung.get("identity", False):
            violations.append(
                f"REGRESSION {label}: rewritten answers diverged from the "
                "post-filtered full materialization"
            )
        floor = base.get("speedup_floor", POINT_SPEEDUP_FLOOR)
        speedup = rung.get("speedup", 0.0)
        line = f"{label}: speedup {speedup:g}x (floor {floor:g}x)"
        if speedup < floor:
            violations.append("REGRESSION " + line)
        else:
            checked.append("ok " + line)
        v, c = compare_rung(
            label, rung, base, POINT_GATED_METRICS, rel_tol, stddev_mult
        )
        violations.extend(v)
        checked.extend(c)
    return violations, checked


def compare_server(
    fresh: dict, baseline: dict, rel_tol: float = REL_TOL, stddev_mult: float = STDDEV_MULT
) -> tuple[list[str], list[str]]:
    """Gate every burst size present in both payloads."""
    base_bursts = {rung["burst"]: rung for rung in baseline["bursts"]}
    violations, checked = [], []
    matched = 0
    for rung in fresh["bursts"]:
        base = base_bursts.get(rung["burst"])
        if base is None:
            continue
        matched += 1
        v, c = compare_rung(
            f"server burst={rung['burst']}",
            rung,
            base,
            SERVER_GATED_METRICS,
            rel_tol,
            stddev_mult,
        )
        violations.extend(v)
        checked.extend(c)
    if matched == 0:
        violations.append("server: no fresh burst matches any baseline burst")
    return violations, checked


def check_provenance(baseline: dict, label: str) -> list[str]:
    """Fail fast when the baseline's engine-config fingerprint is stale."""
    recorded = (
        baseline.get("provenance", {}).get("config_fingerprint", {}).get("digest")
    )
    current = config_fingerprint()["digest"]
    if recorded is None:
        return [f"{label}: baseline has no config fingerprint (regenerate it)"]
    if recorded != current:
        return [
            f"{label}: baseline config fingerprint {recorded} != current {current} "
            "(engine defaults changed or REPRO_CHAOS_SEED is armed; "
            "regenerate the baseline — see EXPERIMENTS.md)"
        ]
    return []


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.check_trajectory",
        description="Gate a fresh trajectory run against committed BENCH baselines",
    )
    parser.add_argument(
        "--baseline-dir",
        default=str(REPO_ROOT),
        help="directory holding the committed BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--scope",
        choices=("full", "smoke"),
        default="smoke",
        help="fresh-run scope (CI uses 'smoke': smallest rung per ladder)",
    )
    parser.add_argument(
        "--target", choices=("engine", "server", "both"), default="both"
    )
    parser.add_argument(
        "--out-dir",
        default=None,
        help="where the fresh BENCH_*.json land (default: a temp directory)",
    )
    parser.add_argument("--rel-tol", type=float, default=REL_TOL)
    parser.add_argument("--stddev-mult", type=float, default=STDDEV_MULT)
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    out_dir = Path(args.out_dir) if args.out_dir else Path(tempfile.mkdtemp(prefix="trajectory-"))

    targets = ("engine", "server") if args.target == "both" else (args.target,)
    baselines = {}
    failures: list[str] = []
    for target in targets:
        path = baseline_dir / f"BENCH_{target}.json"
        if not path.exists():
            failures.append(f"{target}: baseline {path} missing (run benchmarks.trajectory)")
            continue
        baselines[target] = json.loads(path.read_text())
        failures.extend(check_provenance(baselines[target], target))
    if failures:
        for line in failures:
            print(line)
        return 1

    # Reuse the baseline's repetition count so medians are comparable.
    reps = min(
        (b.get("config", {}).get("reps", REPS) for b in baselines.values()),
        default=REPS,
    )
    fresh_paths = run_sweeps(out_dir, scope=args.scope, target=args.target, reps=reps)

    violations: list[str] = []
    checked: list[str] = []
    for target, path in fresh_paths.items():
        fresh = json.loads(path.read_text())
        comparator = compare_engine if target == "engine" else compare_server
        v, c = comparator(
            fresh, baselines[target], rel_tol=args.rel_tol, stddev_mult=args.stddev_mult
        )
        violations.extend(v)
        checked.extend(c)

    for line in checked:
        print(line)
    if violations:
        print()
        for line in violations:
            print(line)
        print(f"\ntrajectory gate: FAILED ({len(violations)} violation(s))")
        return 1
    print(f"\ntrajectory gate: OK ({len(checked)} metric(s) within band)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Figure 4: UIE vs individual-IDB evaluation SQL for Andersen's analysis.

Regenerates both translations from the query generator and checks their
structure: UIE is one INSERT whose arms are UNION ALLed; IIE is one
INSERT per subquery plus a merge.
"""

from repro.core.compiler import QueryGenerator, render_iie_sql, render_uie_sql
from repro.programs import get_program

from benchmarks.common import write_result


def generate_sql() -> tuple[str, str]:
    analyzed = get_program("AA").parse()
    strata = QueryGenerator(analyzed).compile()
    points_to = next(
        predicate
        for stratum in strata
        for predicate in stratum.predicates
        if predicate.predicate == "pointsTo"
    )
    return render_uie_sql(points_to), render_iie_sql(points_to)


def test_fig4_uie_sql(benchmark):
    uie_sql, iie_sql = benchmark.pedantic(generate_sql, rounds=1, iterations=1)
    write_result(
        "fig4_uie_sql",
        "Unified IDB Evaluation:\n" + uie_sql + "\n\nIndividual IDB Evaluation:\n" + iie_sql,
        config={"program": "AA", "predicate": "pointsTo"},
    )

    # UIE: single statement, one INSERT, arms joined by UNION ALL.
    assert uie_sql.count("INSERT INTO") == 1
    assert uie_sql.count("UNION ALL") >= 4  # AA has 5 delta arms

    # IIE: one INSERT per tmp table plus the merge INSERT (Figure 4 left).
    assert iie_sql.count("INSERT INTO pointsTo_tmp_mdelta") == 5
    assert iie_sql.count("INSERT INTO pointsTo_mdelta") == 1
    assert iie_sql.count("UNION ALL") == 4  # only in the merge query

"""Recovery latency: warm rebuild from base + WAL replay vs cold recompute.

The durable serving tier's pitch is that a restart costs *replay*, not
*recompute*: the base checkpoint resumes the materialized fixpoint with
every stratum skipped, and only the logged tail of update batches runs
through incremental maintenance. This bench measures that gap on a TC
view under growing churn tails (simulated seconds, like every other
bench) and asserts the shape: recovery stays well under the cold
recompute of the churned EDB, and scales with the *tail*, not the
dataset.
"""

from __future__ import annotations

import functools
import tempfile
from pathlib import Path

import numpy as np

from repro.common.rng import make_rng
from repro.core import PbmeMode, RecStep, RecStepConfig
from repro.programs import get_program
from repro.server import QueryRequest, QueryService, ServerConfig

from benchmarks.common import write_result

RELATIONAL = dict(pbme=PbmeMode.OFF)

#: Update-tail lengths to recover across (batches left in the WAL).
#: Tails are kept short on purpose: replaying a batch through
#: maintenance costs a real fraction of a recompute on a dense closure,
#: which is exactly why the service compacts the log — a recovered tail
#: is bounded by ``wal_compact_records``, not by the view's lifetime.
TAILS = (1, 2, 4)
NODES, EDGES = 150, 400


def _graph(seed: int) -> np.ndarray:
    rng = make_rng(seed)
    return rng.integers(0, NODES, size=(EDGES, 2)).astype(np.int64)


def _batches(count: int) -> list[dict]:
    # One fixed churn stream; each tail recovers a prefix of it, so the
    # grid isolates tail length (not batch luck) as the variable.
    rng = make_rng(100)
    return [
        {"arc": rng.integers(0, NODES, size=(2, 2)).astype(np.int64)}
        for _ in range(count)
    ]


@functools.lru_cache(maxsize=1)
def recovery_grid() -> dict[int, dict]:
    program = get_program("TC")
    edb = _graph(7)
    rows = {}
    for tail in TAILS:
        with tempfile.TemporaryDirectory() as root:
            service = QueryService(
                ServerConfig(
                    max_concurrent=2,
                    queue_limit=4,
                    wal_root=root,
                    wal_compact_records=10_000,  # keep the whole tail logged
                ),
                engine_config=RecStepConfig(**RELATIONAL),
            )
            ack = service.submit(
                QueryRequest(program=program, edb_data={"arc": edb}, materialize=True)
            )
            service.pump()
            service.flush()
            view_id = ack["session_id"]
            churned = {tuple(map(int, row)) for row in edb}
            for index, inserts in enumerate(_batches(tail)):
                service.submit(
                    QueryRequest(
                        program=program,
                        edb_data={},
                        kind="update",
                        target_session=view_id,
                        inserts=inserts,
                        batch_id=f"b{index}",
                    )
                )
                service.pump()
                service.flush()
                churned |= {tuple(map(int, row)) for row in inserts["arc"]}
            service.drain()

            fresh = QueryService(
                ServerConfig(max_concurrent=2, queue_limit=4, wal_root=root),
                engine_config=RecStepConfig(**RELATIONAL),
            )
            report = fresh.recover()
            doc = report["recovered"][view_id]
            cold = RecStep(RecStepConfig(**RELATIONAL)).evaluate(
                program,
                {"arc": np.array(sorted(churned), dtype=np.int64)},
                dataset=f"tc-churn-{tail}",
            )
            assert cold.status == "ok"
            assert (
                fresh._views[doc["session_id"]].fixpoint() == dict(cold.tuples)
            ), "recovered view diverged from the cold recompute"
            rows[tail] = {
                "tail": tail,
                "replayed": doc["records_replayed"],
                "recovery_seconds": doc["latency_seconds"],
                "cold_seconds": cold.sim_seconds,
            }
    return rows


def test_recovery_beats_cold_recompute():
    grid = recovery_grid()
    lines = [
        "Recovery latency vs cold recompute (TC, simulated seconds)",
        f"{'tail':>6} {'replayed':>9} {'recover':>10} {'cold':>10} {'speedup':>8}",
    ]
    for tail, row in sorted(grid.items()):
        assert row["replayed"] == tail
        # The shape claim: replaying the tail is cheaper than recomputing
        # the churned fixpoint from scratch.
        assert row["recovery_seconds"] < row["cold_seconds"]
        lines.append(
            f"{tail:>6} {row['replayed']:>9} {row['recovery_seconds']:>10.4f}"
            f" {row['cold_seconds']:>10.4f}"
            f" {row['cold_seconds'] / max(row['recovery_seconds'], 1e-9):>7.1f}x"
        )
    # Recovery cost scales with the logged tail, not the dataset.
    assert grid[TAILS[0]]["recovery_seconds"] <= grid[TAILS[-1]]["recovery_seconds"]
    write_result(
        "recovery_latency",
        "\n".join(lines),
        runs=[],
        config={"tails": list(TAILS), "nodes": NODES, "edges": EDGES},
    )


def test_recovery_latency_benchmark(benchmark):
    benchmark.pedantic(recovery_grid, rounds=1, iterations=1)

"""Figure 9: scaling-up data — CC on the R-MAT sweep, AA on datasets 1..7.

Paper's shapes: (a) CC runtime grows near-proportionally with R-MAT
size; (b) AA runtime is nearly flat on datasets 1..3 (threads
underutilized on small inputs) and then grows with datasets 4..7.
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    records_from,
    write_result,
)

RMAT_SWEEP = ["RMAT-10K", "RMAT-20K", "RMAT-40K", "RMAT-80K", "RMAT-160K", "RMAT-320K"]
ANDERSEN_SWEEP = [f"andersen-{k}" for k in range(1, 8)]


@functools.lru_cache(maxsize=1)
def scaling_data_results():
    results = {}
    for dataset in RMAT_SWEEP:
        results[("CC", dataset)] = cached_run(
            "RecStep", "CC", dataset,
            memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
        )
    for dataset in ANDERSEN_SWEEP:
        results[("AA", dataset)] = cached_run(
            "RecStep", "AA", dataset,
            memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
        )
    return results


def test_fig9_scaling_data(benchmark):
    results = benchmark.pedantic(scaling_data_results, rounds=1, iterations=1)
    assert all(result.status == "ok" for result in results.values())

    lines = ["Figure 9a: CC on RMAT graphs (RecStep)",
             f"{'dataset':<12}{'sim time':>10}{'|cc3| tuples':>14}"]
    cc_times = []
    for dataset in RMAT_SWEEP:
        result = results[("CC", dataset)]
        cc_times.append(result.sim_seconds)
        lines.append(
            f"{dataset:<12}{result.sim_seconds:>9.2f}s"
            f"{len(result.tuples['cc3']):>14,}"
        )
    lines.append("")
    lines.append("Figure 9b: AA on synthetic datasets (RecStep)")
    lines.append(f"{'dataset':<12}{'sim time':>10}{'|pointsTo|':>14}")
    aa_times = []
    for dataset in ANDERSEN_SWEEP:
        result = results[("AA", dataset)]
        aa_times.append(result.sim_seconds)
        lines.append(
            f"{dataset:<12}{result.sim_seconds:>9.2f}s"
            f"{len(result.tuples['pointsTo']):>14,}"
        )
    write_result(
        "fig9_scaling_data",
        "\n".join(lines),
        runs=records_from(results, ("program", "dataset")),
        config={
            "rmat_sweep": RMAT_SWEEP,
            "andersen_sweep": ANDERSEN_SWEEP,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # (a) monotone growth, flat-ish at the small end (per-iteration
    # overheads dominate, cores idle) and near-proportional at the large
    # end — each doubling of the graph costs ~1.5-2x once saturated.
    assert all(b >= a * 0.95 for a, b in zip(cc_times, cc_times[1:]))
    assert cc_times[-1] > 4 * cc_times[0]
    assert cc_times[-1] / cc_times[-2] > 1.4
    # (b) flat start (underutilized cores), growth at the large end.
    assert aa_times[2] < aa_times[0] * 3.0          # 1..3 roughly flat
    assert aa_times[-1] > aa_times[2] * 2.0         # 4..7 clearly growing

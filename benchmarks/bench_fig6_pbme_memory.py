"""Figure 6: memory saving of PBME on TC and SG.

Dense Gn-p graphs, PBME on vs off. The paper's shape: the non-PBME
(hash-join) configuration consumes drastically more memory and *fails*
on the larger/denser graphs, while PBME stays flat and completes
everything. Our scaled equivalents of the failure points are the
densest G1K variants (paper: NON-PBME-G20K / NON-PBME-G10K failed).
"""

import functools

from repro import PbmeMode, RecStep, RecStepConfig
from repro.analysis.harness import prepare_edb
from repro.programs import get_program

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cell,
    grid_table,
    records_from,
    write_result,
)

TC_DATASETS = ["G500", "G1K", "G1K-0.1"]
SG_DATASETS = ["G500", "G700", "G1K"]


@functools.lru_cache(maxsize=1)
def pbme_results():
    results = {}
    for program_name, datasets in (("TC", TC_DATASETS), ("SG", SG_DATASETS)):
        program = get_program(program_name)
        for dataset in datasets:
            edb = prepare_edb(program, dataset)
            for mode, label in ((PbmeMode.AUTO, "PBME"), (PbmeMode.OFF, "NON-PBME")):
                config = RecStepConfig(
                    pbme=mode, memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET
                )
                results[(program_name, dataset, label)] = RecStep(config).evaluate(
                    program, edb, dataset=dataset
                )
    return results


def test_fig6_pbme_memory(benchmark):
    results = benchmark.pedantic(pbme_results, rounds=1, iterations=1)

    tables = []
    for program_name, datasets in (("TC", TC_DATASETS), ("SG", SG_DATASETS)):
        cells = {}
        for dataset in datasets:
            for label in ("PBME", "NON-PBME"):
                result = results[(program_name, dataset, label)]
                if result.status == "ok":
                    cells[(dataset, label)] = f"{result.peak_memory_bytes / 1e6:,.0f} MB"
                else:
                    cells[(dataset, label)] = result.status.upper()
        tables.append(
            grid_table(
                f"Figure 6{'a' if program_name == 'TC' else 'b'}: "
                f"{program_name} peak modeled memory",
                datasets,
                ["PBME", "NON-PBME"],
                cells,
            )
        )
    write_result(
        "fig6_pbme_memory",
        "\n\n".join(tables),
        runs=records_from(results, ("program", "dataset", "variant")),
        config={
            "tc_datasets": TC_DATASETS,
            "sg_datasets": SG_DATASETS,
            "variants": ["PBME", "NON-PBME"],
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # PBME completes every graph (the paper's headline claim)...
    for (program_name, dataset, label), result in results.items():
        if label == "PBME":
            assert result.status == "ok", (program_name, dataset)
    # ...while the hash-join path fails on the densest graphs...
    assert results[("TC", "G1K-0.1", "NON-PBME")].status == "oom"
    assert results[("SG", "G1K", "NON-PBME")].status == "oom"
    # ...and where both complete, PBME uses (much) less memory.
    for program_name, datasets in (("TC", TC_DATASETS), ("SG", SG_DATASETS)):
        for dataset in datasets:
            with_pbme = results[(program_name, dataset, "PBME")]
            without = results[(program_name, dataset, "NON-PBME")]
            if without.status == "ok":
                assert with_pbme.peak_memory_bytes < without.peak_memory_bytes
    # Both paths compute identical fixpoints where both complete.
    for dataset in TC_DATASETS:
        without = results[("TC", dataset, "NON-PBME")]
        if without.status == "ok":
            assert results[("TC", dataset, "PBME")].sizes() == without.sizes()

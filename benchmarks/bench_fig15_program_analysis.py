"""Figure 15: program analyses — AA, CSDA, CSPA.

Paper's shapes:

* (a) AA: RecStep fastest on every dataset; bddbddb comparable only on
  the small datasets; BigDatalog and Souffle in between.
* (b) CSDA: the one program where RecStep LOSES — per-query overhead
  across ~1000 tiny iterations; BigDatalog fastest, Souffle second,
  Graspan far behind everyone.
* (c) CSPA: RecStep wins linux and postgresql; Souffle slightly wins the
  small httpd; Graspan is 5-50x slower; BigDatalog cannot run it
  (mutual recursion).
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    cell,
    engine_budget,
    grid_table,
    records_from,
    write_result,
)

AA_DATASETS = [f"andersen-{k}" for k in range(1, 8)]
AA_ENGINES = ["RecStep", "Souffle", "BigDatalog", "bddbddb"]
#: bddbddb attempts only the small AA datasets (paper: runtime "increases
#: a lot when the number of variables grows").
AA_BDD_DATASETS = {"andersen-1", "andersen-2", "andersen-3"}

CSDA_DATASETS = ["csda-linux", "csda-postgresql", "csda-httpd"]
CSDA_ENGINES = ["RecStep", "Souffle", "BigDatalog", "Graspan"]

CSPA_DATASETS = ["cspa-linux", "cspa-postgresql", "cspa-httpd"]
CSPA_ENGINES = ["RecStep", "Souffle", "BigDatalog", "Graspan"]


def _extra(engine: str) -> dict:
    """RecStep runs paper-faithful here: the figure's close calls (Souffle
    edging out RecStep on cspa-httpd and on CSDA) are statements about the
    paper's shared-hash-table engine, and our radix-partitioned mode —
    measured on its own in Figure 8 — is fast enough to flip them."""
    return {"partitioned_exec": False} if engine == "RecStep" else {}


@functools.lru_cache(maxsize=1)
def program_analysis_results():
    results = {}
    for dataset in AA_DATASETS:
        for engine in AA_ENGINES:
            if engine == "bddbddb" and dataset not in AA_BDD_DATASETS:
                continue
            results[("AA", dataset, engine)] = cached_run(
                engine, "AA", dataset,
                memory_budget=MEMORY_BUDGET, time_budget=engine_budget(engine),
                **_extra(engine),
            )
    for dataset in CSDA_DATASETS:
        for engine in CSDA_ENGINES:
            results[("CSDA", dataset, engine)] = cached_run(
                engine, "CSDA", dataset,
                memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
                **_extra(engine),
            )
    for dataset in CSPA_DATASETS:
        for engine in CSPA_ENGINES:
            results[("CSPA", dataset, engine)] = cached_run(
                engine, "CSPA", dataset,
                memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET,
                **_extra(engine),
            )
    return results


def test_fig15_program_analysis(benchmark):
    results = benchmark.pedantic(program_analysis_results, rounds=1, iterations=1)

    tables = []
    for title, datasets, engines in (
        ("Figure 15a: Andersen's analysis", AA_DATASETS, AA_ENGINES),
        ("Figure 15b: CSDA", CSDA_DATASETS, CSDA_ENGINES),
        ("Figure 15c: CSPA", CSPA_DATASETS, CSPA_ENGINES),
    ):
        program = title.split()[-1] if "CSDA" in title or "CSPA" in title else "AA"
        cells = {
            (dataset, engine): cell(results[(program, dataset, engine)])
            for dataset in datasets
            for engine in engines
            if (program, dataset, engine) in results
        }
        tables.append(grid_table(title, datasets, engines, cells))
    write_result(
        "fig15_program_analysis",
        "\n\n".join(tables),
        runs=records_from(results, ("program", "dataset", "engine")),
        config={
            "aa_datasets": AA_DATASETS,
            "csda_datasets": CSDA_DATASETS,
            "cspa_datasets": CSPA_DATASETS,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # (a) AA: RecStep fastest among the scale-up engines everywhere.
    # bddbddb is "comparable ... when the number of variables is small"
    # (paper) — it may even edge out RecStep on dataset 1 — but its
    # runtime blows up as the active domain grows.
    for dataset in AA_DATASETS:
        recstep = results[("AA", dataset, "RecStep")]
        assert recstep.status == "ok"
        for engine in ("Souffle", "BigDatalog"):
            key = ("AA", dataset, engine)
            if results[key].status == "ok":
                assert recstep.sim_seconds < results[key].sim_seconds, key
    bdd_small = results[("AA", "andersen-1", "bddbddb")]
    bdd_large = results[("AA", "andersen-3", "bddbddb")]
    if bdd_small.status == "ok" and bdd_large.status == "ok":
        assert bdd_large.sim_seconds > 3 * bdd_small.sim_seconds

    # (b) CSDA: both Souffle and BigDatalog beat RecStep; Graspan is the
    # slowest system by a wide margin.
    for dataset in CSDA_DATASETS:
        recstep = results[("CSDA", dataset, "RecStep")].sim_seconds
        assert results[("CSDA", dataset, "Souffle")].sim_seconds < recstep
        assert results[("CSDA", dataset, "BigDatalog")].sim_seconds < recstep
        assert results[("CSDA", dataset, "Graspan")].sim_seconds > 2 * recstep

    # (c) CSPA: BigDatalog unsupported; RecStep wins the two larger
    # datasets; Souffle slightly wins httpd; Graspan far behind.
    for dataset in CSPA_DATASETS:
        assert results[("CSPA", dataset, "BigDatalog")].status == "unsupported"
        graspan = results[("CSPA", dataset, "Graspan")]
        if graspan.status == "ok":
            assert graspan.sim_seconds > 3 * results[("CSPA", dataset, "RecStep")].sim_seconds
    assert (
        results[("CSPA", "cspa-linux", "RecStep")].sim_seconds
        < results[("CSPA", "cspa-linux", "Souffle")].sim_seconds
    )
    assert (
        results[("CSPA", "cspa-httpd", "Souffle")].sim_seconds
        < results[("CSPA", "cspa-httpd", "RecStep")].sim_seconds
    )

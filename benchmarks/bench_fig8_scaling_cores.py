"""Figure 8: scaling-up cores — CSPA on httpd and CC on livejournal.

Thread counts 1..40 on the 20-physical-core model. Paper's shape:
near-linear speedup to 16 threads, then a clear plateau caused by
contention on the shared dedup hash table (the machine has 20 physical
cores / 40 hyperthreads).

On top of the paper's shared-table runs, the bench measures the
radix-partitioned execution mode (scatter + per-bucket build/probe/dedup,
no shared table) at the plateau thread counts. Partitioning attacks
exactly the contention the paper blames for the plateau, so on the
join/dedup-bound workload (CSPA) it must lift the 32/40-thread speedup —
with bit-identical fixpoints. CC takes the AGG-MERGE path (no dedup or
set-difference in its hot loop), so it keeps the plateau either way and
serves as the identity control.
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    records_from,
    write_result,
)

THREAD_COUNTS = [1, 2, 4, 8, 16, 20, 32, 40]

#: Where partitioned execution is measured: the knee and the plateau.
PARTITIONED_THREADS = [16, 32, 40]

WORKLOADS = [
    ("CSPA", "cspa-httpd"),
    ("CC", "livejournal"),
]


@functools.lru_cache(maxsize=1)
def scaling_results():
    results = {}
    for program, dataset in WORKLOADS:
        for threads in THREAD_COUNTS:
            results[(program, dataset, threads, "shared")] = cached_run(
                "RecStep",
                program,
                dataset,
                threads=threads,
                memory_budget=MEMORY_BUDGET,
                time_budget=TIME_BUDGET,
                partitioned_exec=False,
            )
        for threads in PARTITIONED_THREADS:
            results[(program, dataset, threads, "partitioned")] = cached_run(
                "RecStep",
                program,
                dataset,
                threads=threads,
                memory_budget=MEMORY_BUDGET,
                time_budget=TIME_BUDGET,
                partitioned_exec=True,
            )
    return results


def test_fig8_scaling_cores(benchmark):
    results = benchmark.pedantic(scaling_results, rounds=1, iterations=1)
    assert all(result.status == "ok" for result in results.values())

    sections = []
    speedups = {}
    for program, dataset in WORKLOADS:
        # Both variants share the 1-thread base: partitioning is a no-op
        # at one thread, so the speedups are directly comparable.
        base = results[(program, dataset, 1, "shared")].sim_seconds
        lines = [
            f"Figure 8: speedup of {program} on {dataset}",
            f"{'threads':>8}{'shared':>12}{'speedup':>9}"
            f"{'partitioned':>14}{'speedup':>9}",
        ]
        for threads in THREAD_COUNTS:
            seconds = results[(program, dataset, threads, "shared")].sim_seconds
            speedups[(program, threads, "shared")] = base / seconds
            row = f"{threads:>8}{seconds:>11.2f}s{base / seconds:>8.2f}x"
            part = results.get((program, dataset, threads, "partitioned"))
            if part is not None:
                speedups[(program, threads, "partitioned")] = base / part.sim_seconds
                row += f"{part.sim_seconds:>13.2f}s{base / part.sim_seconds:>8.2f}x"
            lines.append(row)
        sections.append("\n".join(lines))
    write_result(
        "fig8_scaling_cores",
        "\n\n".join(sections),
        runs=records_from(results, ("program", "dataset", "threads", "variant")),
        config={
            "workloads": WORKLOADS,
            "thread_counts": THREAD_COUNTS,
            "partitioned_threads": PARTITIONED_THREADS,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    for program, _ in WORKLOADS:
        # Monotone gains up to 16 threads, meaningful speedup at 16...
        assert speedups[(program, 2, "shared")] > 1.2
        assert (
            speedups[(program, 16, "shared")]
            > speedups[(program, 8, "shared")]
            > speedups[(program, 4, "shared")]
        )
        assert speedups[(program, 16, "shared")] > 3.0
        # ...then a plateau: 40 threads buys little over 16 (paper: the
        # "synchronization/scheduling primitive around the common shared
        # hash table").
        assert (
            speedups[(program, 40, "shared")]
            < speedups[(program, 16, "shared")] * 1.6
        )
        # And results are identical at every thread count AND in both
        # execution modes — partitioning must not change the fixpoint.
        sizes = {
            frozenset(results[key].sizes().items())
            for key in results
            if key[0] == program
        }
        assert len(sizes) == 1

    # Partitioned execution lifts the plateau where the plateau comes
    # from the shared table: CSPA is join/dedup-bound, so at 32 and 40
    # threads the partitioned speedup must be strictly better.
    for threads in [32, 40]:
        assert (
            speedups[("CSPA", threads, "partitioned")]
            > speedups[("CSPA", threads, "shared")]
        )

"""Figure 8: scaling-up cores — CSPA on httpd and CC on livejournal.

Thread counts 1..40 on the 20-physical-core model. Paper's shape:
near-linear speedup to 16 threads, then a clear plateau caused by
contention on the shared dedup hash table (the machine has 20 physical
cores / 40 hyperthreads).
"""

import functools

from benchmarks.common import (
    MEMORY_BUDGET,
    TIME_BUDGET,
    cached_run,
    records_from,
    write_result,
)

THREAD_COUNTS = [1, 2, 4, 8, 16, 20, 32, 40]

WORKLOADS = [
    ("CSPA", "cspa-httpd"),
    ("CC", "livejournal"),
]


@functools.lru_cache(maxsize=1)
def scaling_results():
    results = {}
    for program, dataset in WORKLOADS:
        for threads in THREAD_COUNTS:
            results[(program, dataset, threads)] = cached_run(
                "RecStep",
                program,
                dataset,
                threads=threads,
                memory_budget=MEMORY_BUDGET,
                time_budget=TIME_BUDGET,
            )
    return results


def test_fig8_scaling_cores(benchmark):
    results = benchmark.pedantic(scaling_results, rounds=1, iterations=1)
    assert all(result.status == "ok" for result in results.values())

    sections = []
    speedups = {}
    for program, dataset in WORKLOADS:
        base = results[(program, dataset, 1)].sim_seconds
        lines = [f"Figure 8: speedup of {program} on {dataset}",
                 f"{'threads':>8}{'sim time':>12}{'speedup':>9}"]
        for threads in THREAD_COUNTS:
            seconds = results[(program, dataset, threads)].sim_seconds
            speedup = base / seconds
            speedups[(program, threads)] = speedup
            lines.append(f"{threads:>8}{seconds:>11.2f}s{speedup:>8.2f}x")
        sections.append("\n".join(lines))
    write_result(
        "fig8_scaling_cores",
        "\n\n".join(sections),
        runs=records_from(results, ("program", "dataset", "threads")),
        config={
            "workloads": WORKLOADS,
            "thread_counts": THREAD_COUNTS,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    for program, _ in WORKLOADS:
        # Monotone gains up to 16 threads, meaningful speedup at 16...
        assert speedups[(program, 2)] > 1.2
        assert speedups[(program, 16)] > speedups[(program, 8)] > speedups[(program, 4)]
        assert speedups[(program, 16)] > 3.0
        # ...then a plateau: 40 threads buys little over 16 (paper: the
        # "synchronization/scheduling primitive around the common shared
        # hash table").
        assert speedups[(program, 40)] < speedups[(program, 16)] * 1.6
        # And results are identical at every thread count.
        sizes = {
            frozenset(results[(program, d, t)].sizes().items())
            for (p, d, t) in results
            if p == program
        }
        assert len(sizes) == 1

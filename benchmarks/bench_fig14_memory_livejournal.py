"""Figure 14: memory consumption on livejournal (REACH / CC / SSSP).

Reuses Figure 13's runs. Paper's shape: RecStep's footprint is a small
fraction of the baselines' — BigDatalog's RDD overhead dominates, with
Souffle (where it can run) in between.
"""

from benchmarks.bench_fig13_realworld_graphs import realworld_results
from benchmarks.common import MEMORY_BUDGET, records_from, write_result

PROGRAMS = ["REACH", "CC", "SSSP"]
ENGINES = ["RecStep", "Souffle", "BigDatalog"]


def test_fig14_memory_livejournal(benchmark):
    results = benchmark.pedantic(realworld_results, rounds=1, iterations=1)

    lines = ["Figure 14: peak modeled memory on livejournal (% of budget)",
             f"{'program':<10}" + "".join(f"{engine:>14}" for engine in ENGINES)]
    peaks = {}
    for program in PROGRAMS:
        row = [f"{program:<10}"]
        for engine in ENGINES:
            result = results[(program, "livejournal", engine)]
            if result.status in ("ok", "timeout"):
                peak = 100.0 * result.peak_memory_bytes / MEMORY_BUDGET
                peaks[(program, engine)] = peak
                row.append(f"{peak:>13.2f}%")
            else:
                row.append(f"{result.status:>14}")
        lines.append("".join(row))
    figure_cells = {
        key: result
        for key, result in results.items()
        if key[1] == "livejournal" and key[2] in ENGINES
    }
    write_result(
        "fig14_memory_livejournal",
        "\n".join(lines),
        runs=records_from(figure_cells, ("program", "dataset", "engine")),
        config={
            "dataset": "livejournal",
            "engines": ENGINES,
            "memory_budget": MEMORY_BUDGET,
            "shares_runs_with": "fig13_realworld_graphs",
        },
    )

    for program in PROGRAMS:
        recstep = peaks[(program, "RecStep")]
        big = peaks.get((program, "BigDatalog"))
        if big is not None:
            assert recstep < big, program
    # Souffle (REACH only) also sits above RecStep.
    assert peaks[("REACH", "RecStep")] < peaks[("REACH", "Souffle")]

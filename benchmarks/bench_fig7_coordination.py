"""Figure 7: SG-PBME coordination vs non-coordination under skew.

A hub-heavy graph gives a few threads nearly all the bit-matrix work;
the COORD variant repacks oversized deltas into a global pool. Paper's
shape: with coordination CPU utilization stays near 100% and the run
finishes sooner; memory is essentially unchanged.
"""

import functools

import numpy as np

from repro import PbmeMode, RecStep, RecStepConfig
from repro.common.rng import make_rng
from repro.programs import get_program

from benchmarks.common import MEMORY_BUDGET, TIME_BUDGET, records_from, write_result


def skewed_graph(branching: int = 4, depth: int = 6, tail: int = 300) -> np.ndarray:
    """One deep, bushy family plus a tail of tiny ones.

    Same-generation pairs inside the fat subtree cascade generation by
    generation, and Algorithm 3 charges the whole cascade to the threads
    owning the handful of first-generation sibling pairs — the data skew
    Figure 7 studies. The tail families keep the other threads briefly
    busy, then idle.
    """
    edges = []
    next_id = 1
    frontier = [0]
    for _ in range(depth):
        new_frontier = []
        for parent in frontier:
            for _ in range(branching):
                edges.append((parent, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    rng = make_rng(77)
    for _ in range(tail):
        parent = next_id
        for child in range(1 + int(rng.integers(0, 2))):
            edges.append((parent, parent + 1 + child))
        next_id += 4
    return np.asarray(edges, dtype=np.int64)


@functools.lru_cache(maxsize=1)
def coordination_results():
    program = get_program("SG")
    edb = {"arc": skewed_graph()}
    results = {}
    for label, coordinated in (("PBME-NO-COORD", False), ("PBME-COORD", True)):
        config = RecStepConfig(
            pbme=PbmeMode.ON,
            sg_coordination=coordinated,
            threads=20,
            memory_budget=MEMORY_BUDGET,
            time_budget=TIME_BUDGET,
        )
        results[label] = RecStep(config).evaluate(program, edb, dataset="skewed")
    return results


def test_fig7_coordination(benchmark):
    results = benchmark.pedantic(coordination_results, rounds=1, iterations=1)
    no_coord = results["PBME-NO-COORD"]
    coord = results["PBME-COORD"]

    def mean_utilization(result):
        samples = result.cpu_trace.samples
        busy = [s.value for s in samples if s.value > 0]
        return sum(busy) / max(1, len(busy))

    lines = [
        "Figure 7: SG-PBME coordination vs non-coordination (skewed graph)",
        f"{'variant':<16}{'sim time':>10}{'mean CPU':>10}{'peak MB':>10}",
    ]
    for label, result in results.items():
        lines.append(
            f"{label:<16}{result.sim_seconds:9.3f}s"
            f"{100 * mean_utilization(result):9.1f}%"
            f"{result.peak_memory_bytes / 1e6:9.1f}"
        )
    write_result(
        "fig7_coordination",
        "\n".join(lines),
        runs=records_from(results, ("variant",)),
        config={
            "program": "SG",
            "dataset": "skewed",
            "threads": 20,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    assert no_coord.status == coord.status == "ok"
    # Same fixpoint, less wall-clock with coordination (Figure 7a)...
    assert coord.sizes() == no_coord.sizes()
    assert coord.sim_seconds < no_coord.sim_seconds
    # ...and essentially the same memory footprint (Figure 7b).
    assert abs(coord.peak_memory_bytes - no_coord.peak_memory_bytes) <= (
        0.1 * no_coord.peak_memory_bytes + 1_000_000
    )

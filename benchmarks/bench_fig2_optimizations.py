"""Figure 2: effect of each optimization — CSPA on httpd.

Runs RecStep with each optimization disabled in turn and reports runtime
as a percentage of RecStep-NO-OP (all optimizations off), exactly the
paper's presentation. Expected ordering (paper, left to right):
RecStep < UIE-off < DSD-off < OOF-FA < EOST-off < FAST-DEDUP-off <
OOF-NA < NO-OP (100%).
"""

import functools

from repro import RecStep, RecStepConfig
from repro.analysis.harness import prepare_edb
from repro.programs import get_program

from benchmarks.common import MEMORY_BUDGET, TIME_BUDGET, records_from, write_result

#: bar label -> ablation key (None = all optimizations on).
ABLATIONS: list[tuple[str, str | None]] = [
    ("RecStep", None),
    ("UIE", "uie"),
    ("DSD", "dsd"),
    ("OOF-FA", "oof-fa"),
    ("EOST", "eost"),
    ("FAST-DEDUP", "fast_dedup"),
    ("OOF-NA", "oof"),
]


@functools.lru_cache(maxsize=1)
def ablation_results():
    """label -> EvaluationResult for every Figure 2/3 bar."""
    program = get_program("CSPA")
    edb_arrays = prepare_edb(program, "cspa-httpd")
    # profile=True populates the counters field of the JSON records; it
    # records spans against the simulated clock without charging it, so
    # the reported sim_seconds are identical to an unprofiled run.
    base = RecStepConfig(
        memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET, profile=True
    )
    results = {}
    for label, ablation in ABLATIONS:
        config = base if ablation is None else base.without(ablation)
        results[label] = RecStep(config).evaluate(program, edb_arrays, dataset="httpd")
    no_op = RecStepConfig.no_op(
        memory_budget=MEMORY_BUDGET, time_budget=TIME_BUDGET, profile=True
    )
    results["RecStep-NO-OP"] = RecStep(no_op).evaluate(program, edb_arrays, dataset="httpd")
    return results


def test_fig2_optimizations(benchmark):
    results = benchmark.pedantic(ablation_results, rounds=1, iterations=1)
    assert all(result.status == "ok" for result in results.values())

    no_op_seconds = results["RecStep-NO-OP"].sim_seconds
    percent = {
        label: 100.0 * result.sim_seconds / no_op_seconds
        for label, result in results.items()
    }
    lines = ["Figure 2: optimizations for RecStep (CSPA on httpd)",
             f"{'configuration':<16}{'time %':>8}  (of RecStep-NO-OP)"]
    for label, value in sorted(percent.items(), key=lambda kv: kv[1]):
        lines.append(f"{label:<16}{value:7.1f}%  {'#' * int(value / 2)}")
    write_result(
        "fig2_optimizations",
        "\n".join(lines),
        runs=records_from(results, ("configuration",)),
        config={
            "program": "CSPA",
            "dataset": "cspa-httpd",
            "ablations": [label for label, _ in ABLATIONS],
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
        },
    )

    # Every configuration computes the same fixpoint...
    sizes = {frozenset(result.sizes().items()) for result in results.values()}
    assert len(sizes) == 1
    # ...and the paper's qualitative ordering holds:
    assert percent["RecStep"] < 50.0                       # paper: 24%
    assert percent["RecStep"] < percent["UIE"]             # each ablation hurts...
    assert percent["RecStep"] < percent["EOST"]
    assert percent["RecStep"] < percent["FAST-DEDUP"]
    # ...except DSD, which may tie: when deltas stay large, the dynamic
    # policy correctly keeps choosing OPSD and off == on (the appendix
    # bench exercises the regime where TPSD wins).
    assert percent["RecStep"] <= percent["DSD"] + 0.5
    assert percent["RecStep"] < percent["OOF-FA"] < percent["OOF-NA"]  # 41% < 63%
    assert percent["OOF-NA"] <= 100.0 + 1e-6               # NO-OP is worst

"""Appendix A: the DSD cost model — calibration and decision regions.

Reproduces (1) the offline alpha training of Equation 7, (2) the
decision-region table over beta, and (3) an empirical head-to-head of
OPSD vs TPSD on real tables in each region, confirming the model picks
the cheaper strategy where the regions are decisive.
"""

import functools

import numpy as np

from repro.common.rng import make_rng
from repro.core.setdiff_policy import DsdPolicy, calibrate_alpha, cost_opsd, cost_tpsd
from repro.engine.database import Database
from repro.engine.executor import COST_BUILD, COST_PROBE

from benchmarks.common import write_result


def _measured_strategies(r_size: int, delta_overlap: float, delta_size: int):
    """Run both strategies on real tables; return their charged times."""
    rng = make_rng(13)
    existing = np.column_stack(
        [np.arange(r_size, dtype=np.int64), np.arange(r_size, dtype=np.int64)]
    )
    overlap = int(delta_size * delta_overlap)
    fresh = delta_size - overlap
    delta_rows = np.vstack(
        [
            existing[rng.choice(r_size, size=overlap, replace=False)]
            if overlap
            else np.empty((0, 2), dtype=np.int64),
            np.column_stack(
                [
                    np.arange(r_size, r_size + fresh, dtype=np.int64),
                    np.arange(r_size, r_size + fresh, dtype=np.int64),
                ]
            ),
        ]
    )
    times = {}
    for strategy in ("OPSD", "TPSD"):
        db = Database(enforce_budgets=False)
        db.load_table("r", ["a", "b"], existing)
        db.load_table("d", ["a", "b"], delta_rows)
        before = db.sim_seconds
        outcome = db.set_difference("d", "r", strategy)
        times[strategy] = db.sim_seconds - before
        assert outcome.delta.shape[0] == fresh
    return times


@functools.lru_cache(maxsize=1)
def dsd_analysis():
    alpha = calibrate_alpha(num_pairs=3, runs_per_pair=2, max_rows=30_000)
    model_alpha = COST_BUILD / COST_PROBE
    policy = DsdPolicy(alpha=model_alpha)

    regions = []
    for beta in (0.5, 1.0, 2.0, policy.threshold(), 2 * policy.threshold()):
        choice = DsdPolicy(alpha=model_alpha).choose(int(beta * 10_000), 10_000)
        regions.append((beta, choice))

    # Note: the analytic threshold (serial per-tuple costs) puts the
    # crossover at beta = 2a/(a-1); under the *parallel* executor the
    # empirical crossover sits higher, because OPSD's big build
    # parallelizes across many blocks while TPSD's small build cannot.
    # Deep in each region the winner is unambiguous either way.
    empirical = {
        "beta=0.5 (R smaller)": _measured_strategies(5_000, 0.5, 10_000),
        "beta=100 (R dominates)": _measured_strategies(1_000_000, 0.5, 10_000),
    }
    return alpha, model_alpha, policy.threshold(), regions, empirical


def test_appendix_dsd_cost_model(benchmark):
    alpha, model_alpha, threshold, regions, empirical = benchmark.pedantic(
        dsd_analysis, rounds=1, iterations=1
    )

    lines = [
        "Appendix A: DSD cost model",
        f"calibrated alpha (Eq. 7 offline training): {alpha:.2f}",
        f"engine cost-model alpha (Cb/Cp):           {model_alpha:.2f}",
        f"TPSD threshold 2a/(a-1):                   {threshold:.2f}",
        "",
        "decision regions (|Rdelta| = 10k):",
    ]
    for beta, choice in regions:
        lines.append(f"  beta = {beta:6.2f} -> {choice}")
    lines.append("")
    lines.append("empirical head-to-head (charged simulated seconds):")
    for label, times in empirical.items():
        lines.append(
            f"  {label:<24} OPSD {times['OPSD']:.4f}s   TPSD {times['TPSD']:.4f}s"
        )
    write_result(
        "appendix_dsd_cost_model",
        "\n".join(lines),
        config={
            "calibrated_alpha": round(alpha, 4),
            "model_alpha": round(model_alpha, 4),
            "tpsd_threshold": round(threshold, 4),
            "decision_regions": [[round(beta, 4), choice] for beta, choice in regions],
            "empirical_seconds": {
                label: {k: round(v, 6) for k, v in times.items()}
                for label, times in empirical.items()
            },
        },
    )

    # The analytic model agrees with the charged costs in both decisive
    # regions: OPSD wins when R is small, TPSD when R dominates.
    assert empirical["beta=0.5 (R smaller)"]["OPSD"] <= empirical[
        "beta=0.5 (R smaller)"
    ]["TPSD"]
    assert empirical["beta=100 (R dominates)"]["TPSD"] < empirical[
        "beta=100 (R dominates)"
    ]["OPSD"]
    # Decision regions match Appendix A.
    assert dict((round(b, 2), c) for b, c in regions)[0.5] == "OPSD"
    assert regions[-1][1] == "TPSD"
    # Cost formulas are consistent with the decision at the boundary.
    assert cost_opsd(10_000, 10_000) < cost_tpsd(10_000, 10_000, 5_000)

"""The perf-trajectory harness: scale-ladder sweeps with honest statistics.

Every rung of a program's dataset ladder runs ``REPS`` repetitions with
distinct seeds and reports **median ± standard deviation** — never a
single run — for throughput (output tuples per simulated second),
simulated runtime, and peak resident/transient memory. The simulated
metrics are deterministic per (program, dataset, seed), so the medians
are exactly reproducible: that is what lets ``check_trajectory.py`` gate
regressions on them while wall-clock stays informational.

Two sweeps, two files at the repo root:

* ``BENCH_engine.json`` — RecStep over the TC/SG/CSPA/Andersen ladders
  (roughly 20 k to 2 M derived tuples per rung), with per-rung scaling
  efficiency relative to the smallest rung, plus two canary rungs: the
  constrained-budget spill record and the incremental-maintenance
  (warm ``maintain`` vs cold recompute) speedup;
* ``BENCH_server.json`` — :class:`~repro.server.service.QueryService`
  under growing submission bursts, with per-class latency percentiles
  from the service's own histograms and the admission-queue peak.

Run the full sweep (regenerates the committed baselines)::

    PYTHONPATH=src python -m benchmarks.trajectory --out-dir .

CI runs the smoke scope (smallest rung of every ladder, same seeds and
repetition count as the baseline) through ``check_trajectory.py``.
"""

from __future__ import annotations

import argparse
import json
import statistics
from pathlib import Path

import numpy as np

from repro.analysis.harness import prepare_edb, run_workload
from repro.core.config import RecStepConfig
from repro.core.recstep import RecStep
from repro.programs import get_program
from repro.server import QueryRequest, QueryService, ServerConfig

from benchmarks.common import (
    MEMORY_BUDGET,
    RESULT_SCHEMA_VERSION,
    TIME_BUDGET,
    provenance,
)

REPO_ROOT = Path(__file__).parent.parent

#: Repetitions per rung; seeds are BASE_SEED + repetition index, so the
#: whole sweep is reproducible and the regression gate can re-run any
#: subset with identical inputs.
REPS = 5
BASE_SEED = 20260808

#: program -> dataset ladder, smallest rung first. Rung sizes span the
#: ~20k..2M derived-tuple range (TC/G2K tops out around 4M).
ENGINE_LADDERS: dict[str, list[str]] = {
    "TC": ["G500", "G1K", "G2K"],
    "SG": ["G500", "G700", "G1K"],
    "CSPA": ["cspa-httpd", "cspa-postgresql", "cspa-linux"],
    "AA": ["andersen-3", "andersen-5", "andersen-7"],
}

#: Per-rung repetition overrides. cspa-linux deterministically exceeds
#: the modeled memory budget (its EDB is fixed, so every seed replays
#: the identical OOM); one repetition documents the envelope without
#: burning five runs on it.
RUNG_REPS: dict[tuple[str, str], int] = {
    ("CSPA", "cspa-linux"): 1,
}

#: The constrained-budget rung (the cspa-linux class, but rescued): a
#: base-dominated workload under a memory budget its fixpoint cannot fit
#: in resident. Without the spill tier the full degradation ladder sheds
#: it (``status_without_spill: "oom"``); with a spill directory it
#: completes, strictly slower — the committed record that the memory
#: envelope degrades to disk, not to shed work. The cycle dataset is
#: deterministic, so one repetition replays exactly.
CONSTRAINED_RUNGS: list[dict] = [
    {"program": "TC", "dataset": "cycle-300", "memory_budget": 550_000},
]

#: The incremental-maintenance rung: materialize a fixpoint, replay a
#: seeded stream of small insert-dominant EDB batches through
#: ``MaterializedFixpoint.maintain``, then recompute the final EDB state
#: from scratch. Gated on the per-batch maintain time, the recompute
#: time, and their ratio staying above :data:`UPDATE_SPEEDUP_FLOOR` —
#: delta propagation from a warm fixpoint must beat re-running the
#: closure. Deletions (DRed over-delete/rederive, which on a dense
#: closure approaches recompute cost by design) are covered for
#: correctness in tests/test_ivm.py, not priced here; see EXPERIMENTS.md.
#: G2K (wide and shallow: 4 M tuples in 4 iterations) rather than a
#: cycle: on an n-cycle the left-linear TC rule crawls one hop per
#: iteration, so a single-arc delta replays the full n-iteration ladder
#: and fixed per-statement dispatch — which maintenance cannot avoid —
#: swamps the per-iteration delta savings the rung is meant to price.
UPDATE_RUNGS: list[dict] = [
    {"program": "TC", "dataset": "G2K", "batches": 8, "batch_rows": 4},
]

#: Minimum required recompute/maintain speedup for the update rungs.
UPDATE_SPEEDUP_FLOOR = 5.0

UPDATE_GATED_METRICS = ("maintain_sim_seconds", "recompute_sim_seconds")

#: The demand (point-query) rung: answer one bound-source TC goal
#: through the magic-set rewrite, against materializing the full closure
#: and post-filtering it by the same pattern. Each repetition checks the
#: two answer sets are tuple-identical, so the rung never reports a
#: speedup for a wrong answer. G2K for the same reason the update rung
#: uses it: wide and shallow, so the demand restriction (one source's
#: cone instead of every source's) is the dominant cost difference.
POINT_RUNGS: list[dict] = [
    {"program": "TC", "dataset": "G2K"},
]

#: Minimum required full/answer speedup for the point rungs.
POINT_SPEEDUP_FLOOR = 3.0

POINT_GATED_METRICS = ("answer_sim_seconds", "full_sim_seconds")

#: Server sweep: submission burst sizes, smallest first. Each burst is a
#: round-robin mix of the cheap queries below; queue_limit tracks the
#: burst so no submission is rejected and every query's latency counts.
SERVER_BURSTS = [4, 8, 16]
SERVER_MIX: list[tuple[str, str]] = [
    ("TC", "G500"),
    ("AA", "andersen-2"),
    ("CC", "RMAT-10K"),
]
SERVER_MAX_CONCURRENT = 4

#: Gated summary statistics (simulated-clock deterministic). Wall-clock
#: is recorded alongside but never gated — it measures the host, not the
#: engine.
ENGINE_GATED_METRICS = ("sim_seconds", "throughput", "peak_memory_bytes")
SERVER_GATED_METRICS = (
    "sim_seconds",
    "throughput",
    "latency_p50",
    "latency_p95",
    "latency_p99",
    "max_queue_depth",
)


def summarize(values: list[float]) -> dict:
    """Median ± sample standard deviation over one rung's repetitions."""
    return {
        "median": round(statistics.median(values), 9),
        "stddev": round(statistics.stdev(values), 9) if len(values) > 1 else 0.0,
        "min": round(min(values), 9),
        "max": round(max(values), 9),
        "values": [round(v, 9) for v in values],
    }


# ---------------------------------------------------------------------------
# Engine sweep
# ---------------------------------------------------------------------------


def run_engine_rung(program: str, dataset: str, reps: int = REPS) -> dict:
    """One ladder rung: ``reps`` seeded runs, summarized."""
    sim_seconds, wall_seconds, throughput = [], [], []
    peak_memory, peak_transient = [], []
    tuples_out, iterations, statuses = [], [], []
    for rep in range(reps):
        result = run_workload(
            "RecStep",
            program,
            dataset,
            memory_budget=MEMORY_BUDGET,
            time_budget=TIME_BUDGET,
            seed=BASE_SEED + rep,
        )
        statuses.append(result.status)
        if result.status != "ok":
            continue
        out = sum(result.sizes().values())
        sim_seconds.append(result.sim_seconds)
        wall_seconds.append(result.wall_seconds or 0.0)
        throughput.append(out / result.sim_seconds if result.sim_seconds else 0.0)
        peak_memory.append(float(result.peak_memory_bytes))
        peak_transient.append(float(result.peak_transient_bytes))
        tuples_out.append(out)
        iterations.append(result.iterations)
    rung = {
        "program": program,
        "dataset": dataset,
        "reps": reps,
        "statuses": statuses,
        "ok_runs": len(sim_seconds),
    }
    if sim_seconds:
        rung.update(
            {
                "tuples_out": summarize([float(t) for t in tuples_out]),
                "iterations": summarize([float(i) for i in iterations]),
                "sim_seconds": summarize(sim_seconds),
                "wall_seconds": summarize(wall_seconds),  # informational
                "throughput": summarize(throughput),
                "peak_memory_bytes": summarize(peak_memory),
                "peak_transient_bytes": summarize(peak_transient),
            }
        )
    return rung


def run_engine_sweep(
    ladders: dict[str, list[str]] | None = None, reps: int = REPS
) -> dict:
    """The full engine trajectory: every program ladder, rung by rung."""
    ladders = ladders if ladders is not None else ENGINE_LADDERS
    out_ladders: dict[str, list[dict]] = {}
    for program, datasets in ladders.items():
        rungs = []
        base_throughput = None
        for dataset in datasets:
            rung_reps = min(reps, RUNG_REPS.get((program, dataset), reps))
            rung = run_engine_rung(program, dataset, reps=rung_reps)
            if "throughput" in rung:
                median = rung["throughput"]["median"]
                if base_throughput is None:
                    base_throughput = median
                rung["scaling_efficiency"] = round(
                    median / base_throughput if base_throughput else 0.0, 6
                )
            rungs.append(rung)
            print(f"[engine] {program}/{dataset}: {_rung_line(rung)}", flush=True)
        out_ladders[program] = rungs
    return {
        "kind": "engine-trajectory",
        "constrained": run_constrained_sweep(),
        "update": run_update_sweep(),
        "point": run_point_sweep(),
        "schema_version": RESULT_SCHEMA_VERSION,
        "provenance": provenance(),
        "config": {
            "engine": "RecStep",
            "reps": reps,
            "base_seed": BASE_SEED,
            "threads": 20,
            "memory_budget": MEMORY_BUDGET,
            "time_budget": TIME_BUDGET,
            "gated_metrics": list(ENGINE_GATED_METRICS),
            "update_gated_metrics": list(UPDATE_GATED_METRICS),
            "update_speedup_floor": UPDATE_SPEEDUP_FLOOR,
            "point_gated_metrics": list(POINT_GATED_METRICS),
            "point_speedup_floor": POINT_SPEEDUP_FLOOR,
        },
        "ladders": out_ladders,
    }


def run_constrained_rung(entry: dict) -> dict:
    """The memory-envelope rung: OOM without the spill tier, done with.

    Both halves run under the same tight ``memory_budget`` with the
    degradation ladder armed; only the second gets a spill directory.
    The spilled run's gated metrics land in the baseline like any other
    rung's; the no-spill status documents the envelope being exceeded.
    """
    import tempfile

    program, dataset = entry["program"], entry["dataset"]
    budget = entry["memory_budget"]
    without = run_workload(
        "RecStep",
        program,
        dataset,
        memory_budget=budget,
        time_budget=TIME_BUDGET,
        seed=BASE_SEED,
        degradation=True,
    )
    with tempfile.TemporaryDirectory(prefix="trajectory-spill-") as spill_dir:
        spilled = run_workload(
            "RecStep",
            program,
            dataset,
            memory_budget=budget,
            time_budget=TIME_BUDGET,
            seed=BASE_SEED,
            degradation=True,
            spill_dir=spill_dir,
        )
    rung = {
        "program": program,
        "dataset": dataset,
        "memory_budget": budget,
        "reps": 1,
        "status_without_spill": without.status,
        "statuses": [spilled.status],
        "ok_runs": 1 if spilled.status == "ok" else 0,
    }
    if spilled.status == "ok":
        out = sum(spilled.sizes().values())
        recap = (spilled.resilience or {}).get("spill", {})
        rung.update(
            {
                "tuples_out": summarize([float(out)]),
                "iterations": summarize([float(spilled.iterations)]),
                "sim_seconds": summarize([spilled.sim_seconds]),
                "wall_seconds": summarize([spilled.wall_seconds or 0.0]),
                "throughput": summarize(
                    [out / spilled.sim_seconds if spilled.sim_seconds else 0.0]
                ),
                "peak_memory_bytes": summarize([float(spilled.peak_memory_bytes)]),
                "peak_transient_bytes": summarize(
                    [float(spilled.peak_transient_bytes)]
                ),
                "peak_spilled_bytes": summarize(
                    [float(recap.get("peak_spilled_bytes", 0))]
                ),
            }
        )
    return rung


def run_constrained_sweep(rungs: list[dict] | None = None) -> list[dict]:
    """Every constrained-budget rung, printed like the ladder rungs."""
    out = []
    for entry in rungs if rungs is not None else CONSTRAINED_RUNGS:
        rung = run_constrained_rung(entry)
        out.append(rung)
        spilled_mb = (
            rung["peak_spilled_bytes"]["median"] / 1e6
            if "peak_spilled_bytes" in rung
            else 0.0
        )
        print(
            f"[engine] {rung['program']}/{rung['dataset']} "
            f"@ {rung['memory_budget']:,}B: "
            f"without spill {rung['status_without_spill']}, "
            f"with spill {rung['statuses'][0]} "
            f"({spilled_mb:.2f} MB spilled): {_rung_line(rung)}",
            flush=True,
        )
    return out


def run_update_rung(entry: dict) -> dict:
    """The incremental-maintenance rung: warm maintain vs cold recompute.

    Materializes the fixpoint once, applies ``batches`` seeded
    insert-dominant churn batches through the live view, then evaluates
    the *final* EDB state from scratch on a fresh engine. Every batch's
    simulated maintain time is summarized; the speedup is the recompute
    time over the median batch. The maintained fixpoint is compared
    tuple-for-tuple against the recompute (``identity``) so the rung
    never reports a speedup for a wrong answer.
    """
    program = get_program(entry["program"])
    dataset = entry["dataset"]
    batches, batch_rows = entry["batches"], entry["batch_rows"]
    edb = prepare_edb(program, dataset, seed=BASE_SEED)
    arcs = edb["arc"]
    node_span = int(arcs.max()) + 65  # fresh ids beyond the cycle join in
    engine = RecStep(RecStepConfig(memory_budget=MEMORY_BUDGET))
    view = engine.materialize(
        program, {name: rows.copy() for name, rows in edb.items()}, dataset
    )
    rung = {
        "program": entry["program"],
        "dataset": dataset,
        "batches": batches,
        "batch_rows": batch_rows,
        "reps": 1,
        "speedup_floor": UPDATE_SPEEDUP_FLOOR,
    }
    if view.status != "ready":
        rung.update({"statuses": [view.result.status], "ok_runs": 0})
        view.release()
        return rung
    rng = np.random.default_rng(BASE_SEED)
    maintain_sim, delta_rows, statuses = [], [], []
    current = arcs
    for _ in range(batches):
        fresh = rng.integers(0, node_span, size=(batch_rows, 2), dtype=np.int64)
        result = view.maintain({"arc": fresh}, None)
        statuses.append(result.status)
        if result.status != "ok":
            continue
        maintain_sim.append(result.sim_seconds)
        delta_rows.append(float(result.delta_rows))
        current = np.unique(np.concatenate([current, fresh]), axis=0)
    final_edb = {name: rows.copy() for name, rows in edb.items()}
    final_edb["arc"] = current.copy()
    recompute = RecStep(RecStepConfig(memory_budget=MEMORY_BUDGET)).evaluate(
        program, final_edb, dataset
    )
    reference = {
        name: {tuple(int(v) for v in row) for row in rows}
        for name, rows in recompute.tuples.items()
    }
    identity = recompute.status == "ok" and view.fixpoint() == reference
    view.release()
    rung.update({"statuses": statuses, "ok_runs": len(maintain_sim)})
    if maintain_sim and recompute.status == "ok":
        median = statistics.median(maintain_sim)
        rung.update(
            {
                "identity": identity,
                "maintain_sim_seconds": summarize(maintain_sim),
                "recompute_sim_seconds": summarize([recompute.sim_seconds]),
                "delta_rows": summarize(delta_rows),
                "speedup": round(
                    recompute.sim_seconds / median if median else 0.0, 3
                ),
            }
        )
    return rung


def run_update_sweep(rungs: list[dict] | None = None) -> list[dict]:
    """Every incremental-maintenance rung, printed like the ladder rungs."""
    out = []
    for entry in rungs if rungs is not None else UPDATE_RUNGS:
        rung = run_update_rung(entry)
        out.append(rung)
        if "speedup" in rung:
            maintain = rung["maintain_sim_seconds"]["median"]
            recompute = rung["recompute_sim_seconds"]["median"]
            print(
                f"[engine] {rung['program']}/{rung['dataset']} update: "
                f"maintain {maintain:.6f}s/batch vs recompute {recompute:.3f}s "
                f"-> {rung['speedup']:.1f}x (floor {rung['speedup_floor']:.0f}x, "
                f"identity {rung['identity']})",
                flush=True,
            )
        else:
            print(
                f"[engine] {rung['program']}/{rung['dataset']} update: "
                f"no ok runs ({rung['statuses']})",
                flush=True,
            )
    return out


def run_point_rung(entry: dict, reps: int = REPS) -> dict:
    """The demand rung: one bound point goal vs full materialization.

    Each repetition prepares its seeded EDB, answers the goal
    ``tc(<min source>, x)`` through the magic-set rewrite on a fresh
    engine, then materializes the full closure on another fresh engine
    and post-filters it by the same pattern. The answer sets must be
    tuple-identical every repetition; the speedup is the median full
    time over the median answer time.
    """
    from repro.datalog.magic import filter_answers
    from repro.datalog.parser import parse_goal

    program = get_program(entry["program"])
    dataset = entry["dataset"]
    answer_sim, full_sim, answer_rows, statuses = [], [], [], []
    identity = True
    for rep in range(reps):
        edb = prepare_edb(program, dataset, seed=BASE_SEED + rep)
        source = int(edb["arc"][:, 0].min())
        goal = parse_goal(entry.get("goal", "tc({0}, x)").format(source))
        answered = RecStep(RecStepConfig(memory_budget=MEMORY_BUDGET)).answer(
            program,
            goal,
            {name: rows.copy() for name, rows in edb.items()},
            dataset,
        )
        full = RecStep(RecStepConfig(memory_budget=MEMORY_BUDGET)).evaluate(
            program, edb, dataset
        )
        statuses.append(
            answered.status if answered.status != "ok" else full.status
        )
        if answered.status != "ok" or full.status != "ok":
            continue
        expected = filter_answers(full.tuples[goal.predicate], goal)
        identity = identity and answered.tuples[goal.predicate] == expected
        answer_sim.append(answered.sim_seconds)
        full_sim.append(full.sim_seconds)
        answer_rows.append(float(len(expected)))
    rung = {
        "program": entry["program"],
        "dataset": dataset,
        "reps": reps,
        "speedup_floor": POINT_SPEEDUP_FLOOR,
        "statuses": statuses,
        "ok_runs": len(answer_sim),
    }
    if answer_sim:
        median = statistics.median(answer_sim)
        rung.update(
            {
                "identity": identity,
                "answer_sim_seconds": summarize(answer_sim),
                "full_sim_seconds": summarize(full_sim),
                "answer_rows": summarize(answer_rows),
                "speedup": round(
                    statistics.median(full_sim) / median if median else 0.0, 3
                ),
            }
        )
    return rung


def run_point_sweep(rungs: list[dict] | None = None, reps: int = REPS) -> list[dict]:
    """Every point-query rung, printed like the ladder rungs."""
    out = []
    for entry in rungs if rungs is not None else POINT_RUNGS:
        rung = run_point_rung(entry, reps=reps)
        out.append(rung)
        if "speedup" in rung:
            answer = rung["answer_sim_seconds"]["median"]
            full = rung["full_sim_seconds"]["median"]
            print(
                f"[engine] {rung['program']}/{rung['dataset']} point: "
                f"answer {answer:.4f}s vs full {full:.3f}s "
                f"-> {rung['speedup']:.1f}x (floor {rung['speedup_floor']:.0f}x, "
                f"identity {rung['identity']})",
                flush=True,
            )
        else:
            print(
                f"[engine] {rung['program']}/{rung['dataset']} point: "
                f"no ok runs ({rung['statuses']})",
                flush=True,
            )
    return out


def _rung_line(rung: dict) -> str:
    if "throughput" not in rung:
        return f"no ok runs ({rung['statuses']})"
    thr = rung["throughput"]
    mem = rung["peak_memory_bytes"]["median"] / 1e6
    return (
        f"{thr['median']:,.0f} ± {thr['stddev']:,.0f} tuples/s, "
        f"peak {mem:.1f} MB, eff {rung.get('scaling_efficiency', 1.0):.3f}"
    )


# ---------------------------------------------------------------------------
# Server sweep
# ---------------------------------------------------------------------------


def run_server_burst(burst: int, reps: int = REPS) -> dict:
    """One burst size: ``reps`` seeded service runs, summarized.

    Each run submits ``burst`` queries round-robin over ``SERVER_MIX``
    into an idle service, then flushes to completion; the reported
    latencies come from the service's own per-class histograms, so the
    sweep also exercises the telemetry surface it reports on.
    """
    sim_seconds, throughput = [], []
    latency_p50, latency_p95, latency_p99 = [], [], []
    queue_wait_p95, max_queue_depth = [], []
    done_counts = []
    for rep in range(reps):
        seed = BASE_SEED + rep
        service = QueryService(
            ServerConfig(
                max_concurrent=SERVER_MAX_CONCURRENT,
                queue_limit=burst,
                memory_budget=MEMORY_BUDGET,
            ),
            engine_config=RecStepConfig(memory_budget=MEMORY_BUDGET),
        )
        for i in range(burst):
            program_name, dataset = SERVER_MIX[i % len(SERVER_MIX)]
            program = get_program(program_name)
            edb = prepare_edb(program, dataset, seed=seed + i)
            response = service.submit(
                QueryRequest(program=program, edb_data=edb, dataset=dataset)
            )
            assert response["accepted"], response
        service.flush()
        snapshot = service.metrics_snapshot()
        lat = snapshot["histograms"]["latency.all"]
        wait = snapshot["histograms"]["queue_wait.all"]
        now = snapshot["now"]
        counts = snapshot["session_counts"]
        sim_seconds.append(now)
        throughput.append(lat["count"] / now if now else 0.0)
        latency_p50.append(lat["p50"])
        latency_p95.append(lat["p95"])
        latency_p99.append(lat["p99"])
        queue_wait_p95.append(wait["p95"])
        max_queue_depth.append(float(snapshot["queue_timeline"]["max_queue_depth"]))
        done_counts.append(counts.get("done", 0))
    return {
        "burst": burst,
        "reps": reps,
        "max_concurrent": SERVER_MAX_CONCURRENT,
        "done": done_counts,
        "sim_seconds": summarize(sim_seconds),
        "throughput": summarize(throughput),  # queries per simulated second
        "latency_p50": summarize(latency_p50),
        "latency_p95": summarize(latency_p95),
        "latency_p99": summarize(latency_p99),
        "queue_wait_p95": summarize(queue_wait_p95),
        "max_queue_depth": summarize(max_queue_depth),
    }


def run_server_sweep(bursts: list[int] | None = None, reps: int = REPS) -> dict:
    """The service trajectory: growing bursts over the query mix."""
    bursts = bursts if bursts is not None else SERVER_BURSTS
    rungs = []
    for burst in bursts:
        rung = run_server_burst(burst, reps=reps)
        rungs.append(rung)
        thr = rung["throughput"]
        print(
            f"[server] burst {burst}: {thr['median']:.3f} ± {thr['stddev']:.3f} q/s, "
            f"p99 {rung['latency_p99']['median']:.3f}s, "
            f"peak queue {rung['max_queue_depth']['median']:.0f}",
            flush=True,
        )
    return {
        "kind": "server-trajectory",
        "schema_version": RESULT_SCHEMA_VERSION,
        "provenance": provenance(),
        "config": {
            "reps": reps,
            "base_seed": BASE_SEED,
            "max_concurrent": SERVER_MAX_CONCURRENT,
            "memory_budget": MEMORY_BUDGET,
            "mix": [list(pair) for pair in SERVER_MIX],
            "gated_metrics": list(SERVER_GATED_METRICS),
        },
        "bursts": rungs,
    }


# ---------------------------------------------------------------------------
# Scopes and entry point
# ---------------------------------------------------------------------------


def scope_ladders(scope: str) -> dict[str, list[str]]:
    """Engine ladders for a scope: "full" or "smoke" (smallest rung only)."""
    if scope == "full":
        return dict(ENGINE_LADDERS)
    if scope == "smoke":
        return {program: rungs[:1] for program, rungs in ENGINE_LADDERS.items()}
    raise ValueError(f"unknown scope {scope!r} (expected 'full' or 'smoke')")


def scope_bursts(scope: str) -> list[int]:
    if scope == "full":
        return list(SERVER_BURSTS)
    if scope == "smoke":
        return SERVER_BURSTS[:1]
    raise ValueError(f"unknown scope {scope!r} (expected 'full' or 'smoke')")


def run_sweeps(
    out_dir: Path, scope: str = "full", target: str = "both", reps: int = REPS
) -> dict[str, Path]:
    """Run the requested sweeps and write ``BENCH_*.json`` into out_dir."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    if target in ("engine", "both"):
        payload = run_engine_sweep(scope_ladders(scope), reps=reps)
        payload["scope"] = scope
        path = out_dir / "BENCH_engine.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written["engine"] = path
    if target in ("server", "both"):
        payload = run_server_sweep(scope_bursts(scope), reps=reps)
        payload["scope"] = scope
        path = out_dir / "BENCH_server.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written["server"] = path
    for label, path in written.items():
        print(f"[{label}] written to {path}")
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.trajectory",
        description="Scale-ladder perf sweep writing BENCH_*.json baselines",
    )
    parser.add_argument(
        "--out-dir",
        default=str(REPO_ROOT),
        help="directory for BENCH_engine.json / BENCH_server.json "
        "(default: the repo root, i.e. the committed baselines)",
    )
    parser.add_argument(
        "--scope",
        choices=("full", "smoke"),
        default="full",
        help="'full' sweeps every rung; 'smoke' only the smallest rung of "
        "each ladder (the CI gate scope)",
    )
    parser.add_argument(
        "--target",
        choices=("engine", "server", "both"),
        default="both",
        help="which sweep(s) to run",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=REPS,
        help=f"repetitions per rung (default {REPS}; the committed "
        "baselines use the default)",
    )
    args = parser.parse_args(argv)
    run_sweeps(Path(args.out_dir), scope=args.scope, target=args.target, reps=args.reps)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Table 4: CPU efficiency of the systems on representative workloads.

ce = 1 / (runtime * cores). Paper's shape: RecStep has the highest CPU
efficiency on nearly every workload (it gets the most out of each core);
Distributed-BigDatalog's 120 cores depress its score; CSDA is the
exception where RecStep's score drops below the baselines'.
"""

import functools

from repro.analysis.cpu_efficiency import CORES_USED, cpu_efficiency, format_efficiency

from benchmarks.common import (
    MEMORY_BUDGET,
    cached_run,
    engine_budget,
    grid_table,
    records_from,
    write_result,
)

#: (workload label, program, dataset) — Table 4's rows at our scale.
WORKLOADS = [
    ("TC (G1K)", "TC", "G1K"),
    ("SG (G500)", "SG", "G500"),
    ("REACH (orkut)", "REACH", "orkut"),
    ("CC (orkut)", "CC", "orkut"),
    ("SSSP (orkut)", "SSSP", "orkut"),
    ("AA (dataset 7)", "AA", "andersen-7"),
    ("CSDA (linux)", "CSDA", "csda-linux"),
    ("CSPA (linux)", "CSPA", "cspa-linux"),
]

ENGINES = ["Graspan", "BigDatalog", "Distributed-BigDatalog", "Souffle", "RecStep"]


@functools.lru_cache(maxsize=1)
def efficiency_results():
    results = {}
    for label, program, dataset in WORKLOADS:
        for engine in ENGINES:
            results[(label, engine)] = cached_run(
                engine, program, dataset,
                memory_budget=MEMORY_BUDGET, time_budget=engine_budget(engine),
            )
    return results


def test_table4_cpu_efficiency(benchmark):
    results = benchmark.pedantic(efficiency_results, rounds=1, iterations=1)

    cells = {}
    efficiency = {}
    for (label, engine), result in results.items():
        value = cpu_efficiency(result)
        efficiency[(label, engine)] = value
        cells[(label, engine)] = format_efficiency(value)
    table = grid_table(
        "Table 4: CPU efficiency (1 / (time x cores)); '-' = failed/unsupported",
        [label for label, _, _ in WORKLOADS],
        ENGINES,
        cells,
    )
    write_result(
        "table4_cpu_efficiency",
        table,
        runs=records_from(results, ("workload", "engine")),
        config={
            "workloads": [[label, program, dataset] for label, program, dataset in WORKLOADS],
            "engines": ENGINES,
            "cores_used": dict(CORES_USED),
            "memory_budget": MEMORY_BUDGET,
        },
    )

    # RecStep posts the best efficiency on the graph workloads...
    for label in ("TC (G1K)", "SG (G500)", "CC (orkut)", "AA (dataset 7)"):
        recstep = efficiency[(label, "RecStep")]
        assert recstep is not None
        for engine in ENGINES:
            other = efficiency[(label, engine)]
            if engine != "RecStep" and other is not None:
                assert recstep > other, (label, engine)
    # ...but not on CSDA (the paper's exception).
    csda_recstep = efficiency[("CSDA (linux)", "RecStep")]
    csda_bigdatalog = efficiency[("CSDA (linux)", "BigDatalog")]
    assert csda_bigdatalog is not None and csda_recstep is not None
    assert csda_bigdatalog > csda_recstep
    # Distributed-BigDatalog's 120 cores depress its efficiency below
    # single-node RecStep wherever both complete.
    for label, _, _ in WORKLOADS:
        distributed = efficiency[(label, "Distributed-BigDatalog")]
        recstep = efficiency[(label, "RecStep")]
        if distributed is not None and recstep is not None and label != "CSDA (linux)":
            assert recstep > distributed, label
    assert CORES_USED["Distributed-BigDatalog"] == 120

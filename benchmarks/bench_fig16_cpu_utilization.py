"""Figure 16: CPU utilization on program analyses (AA ds5, CSPA linux/httpd).

Reuses Figure 15's runs. Paper's shape: RecStep's utilization curve
reaches (near-)full machine use during its heavy phases — higher than
Souffle's ceiling, which is capped by per-target-index contention
(Souffle's flat ~40-60% bands in Figures 16a-c).

We report the time-weighted mean and the peak of each engine's
utilization trace; the peak is the paper's visual "how high does the
curve go".
"""

from benchmarks.bench_fig15_program_analysis import program_analysis_results
from benchmarks.common import records_from, write_result


def time_weighted_mean(result) -> float:
    """Integrate utilization over simulated time."""
    samples = result.cpu_trace.samples
    if len(samples) < 2:
        return 0.0
    area = 0.0
    for left, right in zip(samples, samples[1:]):
        span = right.time - left.time
        if span > 0:
            area += left.value * span
    total = samples[-1].time - samples[0].time
    return area / total if total > 0 else 0.0


def peak(result) -> float:
    return max((s.value for s in result.cpu_trace.samples), default=0.0)


WORKLOADS = [
    ("AA", "andersen-5", ["RecStep", "Souffle", "BigDatalog"]),
    ("CSPA", "cspa-linux", ["RecStep", "Souffle"]),
    ("CSPA", "cspa-httpd", ["RecStep", "Souffle"]),
]


def test_fig16_cpu_utilization(benchmark):
    results = benchmark.pedantic(program_analysis_results, rounds=1, iterations=1)

    lines = ["Figure 16: CPU utilization during evaluation",
             "(time-weighted mean and peak of the utilization trace)"]
    means, peaks = {}, {}
    for program, dataset, engines in WORKLOADS:
        lines.append(f"\n{program} on {dataset}:")
        for engine in engines:
            result = results[(program, dataset, engine)]
            means[(program, dataset, engine)] = time_weighted_mean(result)
            peaks[(program, dataset, engine)] = peak(result)
            lines.append(
                f"  {engine:<12} mean {100 * means[(program, dataset, engine)]:5.1f}%   "
                f"peak {100 * peaks[(program, dataset, engine)]:5.1f}%  ({result.status})"
            )
    figure_cells = {
        (program, dataset, engine): results[(program, dataset, engine)]
        for program, dataset, engines in WORKLOADS
        for engine in engines
    }
    write_result(
        "fig16_cpu_utilization",
        "\n".join(lines),
        runs=records_from(figure_cells, ("program", "dataset", "engine")),
        config={
            "workloads": [[p, d, e] for p, d, e in WORKLOADS],
            "shares_runs_with": "fig15_program_analysis",
        },
    )

    # RecStep's heavy phases drive utilization above Souffle's contention
    # ceiling on every workload (the paper's headline contrast).
    for program, dataset, engines in WORKLOADS:
        if "Souffle" in engines:
            assert peaks[(program, dataset, "RecStep")] > peaks[
                (program, dataset, "Souffle")
            ], (program, dataset)
    # And RecStep sustains non-trivial utilization overall on the big run.
    assert means[("CSPA", "cspa-linux", "RecStep")] > 0.25
